// The mesh front end: consistent-hash routing over backend scoring shards.
//
// A Router speaks the same framed protocol as a Daemon (FrameServer base)
// but owns no models: it maps every entity-keyed request's entity name
// (Score, Ingest, ScoreLatest — all three payloads lead with the entity)
// onto the HashRing of shard NAMES and forwards the payload byte-for-byte
// to the owning shard over a pooled, reconnecting wire::FrameChannel.
// Because the payload is never re-encoded, a verdict served through the
// mesh is bitwise-identical to one served by the shard directly — the
// property tests/serve_mesh_test.cpp pins against an in-process
// ScoringService. Entity-keyed routing also means an entity's Ingest
// stream and its ScoreLatest requests land on the SAME shard that scores
// it — the store is sharded exactly like the scoring work.
//
// Fault model (docs/MESH.md):
//   * Shards OWN their entity slices — there is no cross-shard failover.
//     When the owner is down, the forward channel retries it with bounded
//     exponential backoff until the shard comes back; only exhausted
//     retries surface as a typed kUnavailable error frame. That is what
//     makes "a shard restart costs latency, not lost requests" hold.
//   * The health prober is OBSERVABILITY, not membership: a probe failure
//     flips the shard's healthy gauge and logs, but never removes it from
//     the ring (its entities have nowhere else to go). Ring membership
//     changes only by explicit Drain.
//   * Drain (wire::kDrain, by shard name): remove from the ring first, so
//     no new request can pick the shard, then wait for in-flight forwards
//     to finish, then close its pooled connections.
//
// Stats: the router's own counter family ("serve.router.*") plus per-shard
// gauges synthesized into the snapshot — serve.router.shard.<name>.healthy
// /.draining/.generation/.reconnects — so one Stats round trip shows the
// whole mesh, including which generation each shard serves.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/frame_server.hpp"
#include "serve/hash_ring.hpp"
#include "serve/wire.hpp"

namespace goodones::serve {

/// One backend shard: a stable NAME (the ring identity — placement and
/// drain address this, and it survives the shard restarting or moving to
/// another port) plus the endpoint currently serving it.
struct RouterBackendSpec {
  std::string name;
  common::Endpoint endpoint;
};

struct RouterConfig {
  /// Where the router listens (unix:<path> or tcp:<host>:<port>).
  common::Endpoint listen;
  std::vector<RouterBackendSpec> backends;
  /// Virtual nodes per shard on the ring (see serve/hash_ring.hpp).
  std::size_t vnodes = 128;
  /// Forward-channel policy per shard: reconnect with backoff and replay
  /// idempotent frames, so a shard restart mid-stream is absorbed here
  /// rather than surfaced to the router's clients.
  wire::FrameChannelConfig forward;
  /// Pooled forward connections per shard (concurrent client requests for
  /// the same shard beyond this queue on the pool).
  std::size_t pool_size = 4;
  /// Health-probe cadence; 0 disables the prober thread.
  int health_interval_ms = 500;
  /// Probe receive timeout — a wedged shard flips unhealthy after this.
  int health_timeout_ms = 2000;
  int accept_poll_ms = 100;
  int send_timeout_ms = 10000;
};

/// Point-in-time view of one shard, for tests and operators.
struct ShardStatus {
  std::string name;
  common::Endpoint endpoint;
  bool healthy = false;
  bool draining = false;
  std::uint64_t generation = 0;  ///< last generation reported by probe/refresh
  std::uint64_t in_flight = 0;
  std::uint64_t reconnects = 0;  ///< forward-pool reconnects (restarts absorbed)
};

class Router final : public FrameServer {
 public:
  explicit Router(RouterConfig config);
  ~Router() override;

  /// The shard name owning `entity` (what a Score for it would route to).
  /// Throws common::PreconditionError when the ring is empty.
  std::string shard_for(std::string_view entity) const;

  /// Removes the shard from the ring, waits for its in-flight forwards,
  /// closes its pooled connections. false = no such shard on the ring.
  /// Also reachable in-band via a wire::kDrain frame.
  bool drain(const std::string& shard);

  std::vector<ShardStatus> shards() const;

 protected:
  bool dispatch(common::Socket& socket, const wire::Frame& frame) override;
  void on_started() override;
  void on_stopping() override;

 private:
  struct Backend {
    Backend(const RouterBackendSpec& spec, const wire::FrameChannelConfig& forward,
            std::size_t pool_size, const wire::FrameChannelConfig& probe);

    std::string name;
    common::Endpoint endpoint;
    wire::ChannelPool pool;
    /// Prober-thread-only fail-fast channel (never contends with the pool).
    wire::FrameChannel probe;
    std::atomic<bool> healthy{false};
    std::atomic<bool> draining{false};
    std::atomic<std::uint64_t> generation{0};
    std::atomic<std::uint64_t> in_flight{0};
  };

  /// Decrements in_flight on scope exit; wakes a waiting drain.
  class InFlightGuard;

  Backend* acquire_backend(std::string_view entity, std::string& owner_out);
  /// Entity-keyed forwarding shared by Score, Ingest and ScoreLatest: peek
  /// the entity (every such payload leads with it), pick the owning shard,
  /// relay the payload byte-for-byte. `retryable` is per-verb: Score and
  /// ScoreLatest replay safely on a fresh connection, Ingest must NOT (an
  /// append is not idempotent — a torn connection cannot tell "lost before
  /// the append" from "lost after", so the failure surfaces to the client).
  void handle_entity_forward(common::Socket& socket, const wire::Frame& frame,
                             bool retryable);
  void handle_stats(common::Socket& socket);
  void handle_health(common::Socket& socket);
  void handle_refresh(common::Socket& socket);
  /// Promote/Rollback broadcast: forwarded to every non-draining shard
  /// verbatim. Shards without a matching staged candidate answer a typed
  /// BadRequest, which the aggregate skips — "applied" means at least one
  /// shard resolved its canary. All-refused relays the refusal; nothing
  /// reachable stays kUnavailable.
  void handle_canary_admin(common::Socket& socket, const wire::Frame& frame);
  void handle_drain(common::Socket& socket, const wire::Frame& frame);
  void probe_loop();

  RouterConfig config_;
  std::vector<std::unique_ptr<Backend>> backends_;

  mutable std::mutex ring_mutex_;  ///< guards ring_ and the lookup+in_flight++ pairing
  HashRing ring_;

  std::mutex drain_mutex_;  ///< wait-side of the in-flight drain handshake
  std::condition_variable drain_cv_;

  std::thread prober_;
  std::mutex prober_mutex_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;
};

}  // namespace goodones::serve
