// The long-lived serving daemon: the IPC front end the ROADMAP names.
//
// A Daemon owns the full serving stack — a ModelRegistry (bundle +
// profiler-state persistence), a ScoringService (lock-free hot-swappable
// bundle snapshots) and an AdaptiveController (online risk profiling with
// the dedicated refresh worker) — and exposes it over a Unix-domain socket
// speaking the length-prefixed binary protocol in serve/wire.hpp:
//
//   Score     entity + raw windows -> per-window forecast/residual/verdict/
//             risk, tagged with the bundle generation that produced them
//             (every verdict is auditable to exactly one published bundle —
//             adaptive defenses get probed, provenance is the answer)
//   Stats     the core::metrics::counters() snapshot + daemon gauges
//   Refresh   force a reassessment now (the admin sibling of the automatic
//             cadence); replies whether a new generation was published
//   Shutdown  stop accepting, drain in-flight connections, exit wait()
//
// Concurrency model: one accept loop thread, one handler thread per
// connection (requests on one connection are served in order; independent
// connections score concurrently and the ScoringService shards their
// windows across its pool). Detector retraining never runs on a connection
// thread: the controller's refresh worker rebuilds and hot-swaps in the
// background while scores keep flowing (tests/serve_daemon_test.cpp pins a
// latency bound on concurrent scores during a slow rebuild).
//
// Error containment: a malformed frame header (bad magic/version/length,
// mid-frame EOF) gets a typed Error frame and the connection is closed —
// after a corrupt header the stream offset cannot be trusted. An
// undecodable payload inside a well-framed message gets an Error frame and
// the connection STAYS open (frame boundaries are intact). Scoring
// precondition failures (unknown entity, wrong channel count) are
// BadRequest error frames; the daemon itself never crashes on client input.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "serve/adaptive_controller.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"
#include "serve/wire.hpp"

namespace goodones::serve {

struct DaemonConfig {
  /// Unix-domain socket path the daemon listens on. Must fit sockaddr_un
  /// (~107 bytes); one daemon per path.
  std::filesystem::path socket_path;
  ScoringServiceConfig scoring;
  /// Adaptive-loop tuning; async_refresh stays the default so rebuilds run
  /// on the controller's worker, never a connection thread.
  AdaptiveControllerConfig adaptive;
  /// With false the daemon serves a frozen bundle (no profiling, no
  /// refreshes; Refresh frames answer refreshed=false).
  bool adaptive_enabled = true;
  /// Registry root; empty = the default <artifacts>/models.
  std::filesystem::path registry_root;
  /// Accept-loop poll granularity (how quickly stop() is observed).
  int accept_poll_ms = 100;
  /// Per-connection send timeout: a client that stops reading its replies
  /// gets its connection dropped after this long instead of wedging a
  /// handler thread (and therefore shutdown) forever. 0 = no timeout.
  int send_timeout_ms = 10000;
};

class Daemon {
 public:
  /// Takes ownership of the serving bundle. The bundle (and every
  /// generation the adaptive loop later publishes) is persisted through
  /// the daemon's registry, so any verdict's generation can be replayed.
  /// `rebuilder` is handed to the AdaptiveController: empty = routing-only
  /// refreshes; wrap build_serving_model(framework, kind, partition,
  /// generation) for detector-retraining refreshes.
  Daemon(ServingModel model, DaemonConfig config,
         AdaptiveController::BundleRebuilder rebuilder = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the socket and starts the accept loop. Throws
  /// common::SocketError when the path cannot be bound.
  void start();

  /// Blocks until a Shutdown frame (or a concurrent stop()) ends the
  /// serving loop, then tears down: stops accepting, waits for in-flight
  /// requests to finish, joins every connection.
  void wait();

  /// Initiates and completes shutdown from the caller's thread. Safe to
  /// call repeatedly; must not be called from a connection handler (a
  /// Shutdown frame is the in-band way — it only *requests* the stop).
  void stop();

  bool running() const noexcept;
  const std::filesystem::path& socket_path() const noexcept {
    return config_.socket_path;
  }

  ScoringService& service() noexcept { return service_; }
  const ModelRegistry& registry() const noexcept { return registry_; }
  /// nullptr when adaptive_enabled is false.
  AdaptiveController* controller() noexcept {
    return controller_ ? &*controller_ : nullptr;
  }
  std::uint64_t generation() const { return service_.generation(); }

 private:
  struct Connection {
    std::shared_ptr<common::Socket> socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void handle_connection(Connection& connection);
  /// Serves one frame; false = close the connection.
  bool dispatch(common::Socket& socket, const wire::Frame& frame);
  void send_error(common::Socket& socket, wire::ErrorCode code,
                  const std::string& message) noexcept;
  void request_stop();
  void reap_finished_connections();

  DaemonConfig config_;
  ModelRegistry registry_;
  ScoringService service_;
  std::optional<AdaptiveController> controller_;

  std::optional<common::UnixListener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};

  std::mutex state_mutex_;  // guards connections_ + stopped_ + wait/stop cv
  std::condition_variable stop_cv_;
  std::list<std::unique_ptr<Connection>> connections_;
  bool stopped_ = false;

  std::mutex teardown_mutex_;  // serializes stop() callers
  bool stopped_after_teardown_ = false;
};

/// Client side of the wire protocol: one connection, blocking round trips.
/// Error frames surface as typed exceptions — BadRequest as
/// common::PreconditionError, malformed/version as
/// common::SerializationError, Internal as std::runtime_error.
class DaemonClient {
 public:
  /// Connects immediately; throws common::SocketError when no daemon
  /// listens at `socket_path`.
  explicit DaemonClient(const std::filesystem::path& socket_path);

  ScoreResponse score(const ScoreRequest& request);
  wire::StatsSnapshot stats();
  wire::RefreshReply refresh();
  /// Asks the daemon to stop; returns once the daemon acknowledged.
  void shutdown();

 private:
  wire::Frame roundtrip(wire::MessageType type, const std::string& payload,
                        wire::MessageType expected_reply);

  common::Socket socket_;
};

}  // namespace goodones::serve
