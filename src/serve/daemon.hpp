// The long-lived serving daemon: one scoring shard of the mesh.
//
// A Daemon owns the full serving stack — a ModelRegistry (bundle +
// profiler-state persistence), a ScoringService (lock-free hot-swappable
// bundle snapshots) and an AdaptiveController (online risk profiling with
// the dedicated refresh worker) — and exposes it over any transport the
// common::Endpoint seam names (unix:<path> for single-host IPC,
// tcp:<host>:<port> for the mesh), speaking the length-prefixed binary
// protocol in serve/wire.hpp:
//
//   Score     entity + raw windows -> per-window forecast/residual/verdict/
//             risk, tagged with the bundle generation that produced them
//             (every verdict is auditable to exactly one published bundle —
//             adaptive defenses get probed, provenance is the answer)
//   Ingest    entity + raw ticks -> appended to the daemon-owned
//             data::ColumnStore (clients stream history once instead of
//             re-sending seq_len rows per window)
//   ScoreLatest  "score entity X now": windows are cut as zero-copy views
//             over the store and scored through the same core as Score —
//             verdicts are bitwise-identical for the same window bytes
//   Stats     the core::metrics::counters() snapshot + daemon gauges
//             (including serve.store.* store gauges)
//   Health    cheap liveness probe (no counter snapshot): serving
//             generation + draining flag — what the router's prober polls
//   Refresh   force a reassessment now (the admin sibling of the automatic
//             cadence); replies whether a new generation was published. In
//             canary mode (adaptive.canary) the rebuild is FORCED and
//             staged as a candidate — promotion is measured, not assumed
//   Promote   make the staged canary candidate the primary (by generation;
//             0 = whatever is staged). Unknown generations answer a typed
//             BadRequest; duplicates answer applied=false (retry-safe)
//   Rollback  drop the staged candidate, primary untouched (same contract)
//   Shutdown  stop accepting, drain in-flight connections, exit wait()
//
// Canary lifecycle events (install/promote/rollback, automatic or manual)
// are appended to the registry's promotion lineage, so the audit trail of
// which generation was primary when — and why it changed — survives
// restarts alongside the bundles themselves.
//
// Lifecycle, concurrency and protocol-error containment live in the
// FrameServer base (shared with serve::Router): one accept loop, one
// handler thread per connection, typed Error frames instead of crashes.
// Detector retraining never runs on a connection thread: the controller's
// refresh worker rebuilds and hot-swaps in the background while scores
// keep flowing (tests/serve_daemon_test.cpp pins a latency bound on
// concurrent scores during a slow rebuild).
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "data/column_store.hpp"
#include "data/window.hpp"
#include "serve/adaptive_controller.hpp"
#include "serve/frame_server.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"
#include "serve/wire.hpp"

namespace goodones::serve {

struct DaemonConfig {
  /// Where the daemon listens: unix:<path> (one daemon per path, must fit
  /// sockaddr_un ~107 bytes) or tcp:<host>:<port> (port 0 = ephemeral;
  /// Daemon::endpoint() reports the resolved port after start()).
  common::Endpoint listen;
  ScoringServiceConfig scoring;
  /// Adaptive-loop tuning; async_refresh stays the default so rebuilds run
  /// on the controller's worker, never a connection thread.
  AdaptiveControllerConfig adaptive;
  /// With false the daemon serves a frozen bundle (no profiling, no
  /// refreshes; Refresh frames answer refreshed=false).
  bool adaptive_enabled = true;
  /// Registry root; empty = the default <artifacts>/models.
  std::filesystem::path registry_root;
  /// Accept-loop poll granularity (how quickly stop() is observed).
  int accept_poll_ms = 100;
  /// Per-connection send timeout: a client that stops reading its replies
  /// gets its connection dropped after this long instead of wedging a
  /// handler thread (and therefore shutdown) forever. 0 = no timeout.
  int send_timeout_ms = 10000;
  /// Root directory of the daemon-owned telemetry store (Ingest /
  /// ScoreLatest). Empty = memory-only: history lives for the daemon's
  /// lifetime but is never persisted.
  std::filesystem::path store_root;
  /// Ticks per store segment; segments seal (and persist, with a root) at
  /// exactly this boundary.
  std::size_t store_segment_capacity = 4096;
  /// mmap sealed segments on read (false = whole-file read fallback).
  bool store_mmap = true;
  /// Window geometry served by ScoreLatest frames that leave seq_len at 0.
  std::size_t store_seq_len = data::kDefaultSeqLen;
};

class Daemon final : public FrameServer {
 public:
  /// Takes ownership of the serving bundle. The bundle (and every
  /// generation the adaptive loop later publishes) is persisted through
  /// the daemon's registry, so any verdict's generation can be replayed.
  /// `rebuilder` is handed to the AdaptiveController: empty = routing-only
  /// refreshes; wrap build_serving_model(framework, kind, partition,
  /// generation) for detector-retraining refreshes.
  Daemon(ServingModel model, DaemonConfig config,
         AdaptiveController::BundleRebuilder rebuilder = {});
  ~Daemon() override;

  ScoringService& service() noexcept { return service_; }
  /// The daemon-owned telemetry store behind Ingest/ScoreLatest.
  data::ColumnStore& store() noexcept { return store_; }
  const ModelRegistry& registry() const noexcept { return registry_; }
  /// nullptr when adaptive_enabled is false.
  AdaptiveController* controller() noexcept {
    return controller_ ? &*controller_ : nullptr;
  }
  std::uint64_t generation() const { return service_.generation(); }

 protected:
  bool dispatch(common::Socket& socket, const wire::Frame& frame) override;
  void on_started() override;
  void on_stopping() override;

 private:
  DaemonConfig config_;
  ModelRegistry registry_;
  ScoringService service_;
  /// Declared after service_: its channel count comes from the served
  /// bundle's domain spec.
  data::ColumnStore store_;
  /// The bundle roster is fixed for the daemon's lifetime (swap_model
  /// enforces an identical entity set), so Ingest validates entities
  /// against this O(1) index instead of the snapshot's vector.
  std::unordered_set<std::string> roster_;
  std::optional<AdaptiveController> controller_;
};

/// Reconnection/pooling policy of a DaemonClient.
struct DaemonClientConfig {
  /// Concurrent wire connections (requests beyond this block until one
  /// frees up). Each connection is one wire::FrameChannel.
  std::size_t pool_size = 1;
  /// Per-connection dial/reconnect/retry policy. The default reconnects
  /// with bounded exponential backoff and retries idempotent round trips
  /// (Score/Stats/Health/Refresh) on a fresh connection — a shard restart
  /// mid-stream costs latency, not errors. Set channel.reconnect = false
  /// for fail-fast semantics.
  wire::FrameChannelConfig channel;
};

/// Client side of the wire protocol, transport-agnostic and (optionally)
/// restart-transparent. Error frames surface as typed exceptions —
/// BadRequest as common::PreconditionError, malformed/version as
/// common::SerializationError, Internal/Unavailable as std::runtime_error.
/// Thread-safe: concurrent calls lease distinct pooled connections.
class DaemonClient {
 public:
  /// Connects one pooled channel immediately to fail fast; throws
  /// common::SocketError when the endpoint stays unreachable through the
  /// configured backoff schedule.
  explicit DaemonClient(common::Endpoint endpoint, DaemonClientConfig config = {});

  /// Unix-path convenience (the pre-mesh constructor): single connection,
  /// NO reconnect — dead-transport errors surface immediately, exactly the
  /// old single-socket behavior.
  explicit DaemonClient(const std::filesystem::path& socket_path);

  const common::Endpoint& endpoint() const noexcept { return endpoint_; }

  ScoreResponse score(const ScoreRequest& request);
  /// Streams raw ticks into the daemon's store. NEVER auto-retried, even
  /// over a reconnecting channel: an append is not idempotent, and a torn
  /// connection cannot tell "lost before the append" from "lost after".
  wire::IngestReply ingest(const wire::IngestRequest& request);
  /// Scores the entity's most recent stored windows (server-side cut).
  ScoreResponse score_latest(const wire::ScoreLatestRequest& request);
  wire::StatsSnapshot stats();
  wire::HealthReply health();
  wire::RefreshReply refresh();
  /// Promotes the daemon's staged canary candidate (0 = whatever is
  /// staged). Auto-retried on a torn connection: address an explicit
  /// generation for exactly-once semantics across retries.
  wire::PromoteReply promote(std::uint64_t generation = 0);
  /// Drops the staged canary candidate (same addressing as promote()).
  wire::RollbackReply rollback(std::uint64_t generation = 0);
  /// Router admin: drain shard `shard` out of the ring (see wire::DrainRequest).
  wire::DrainReply drain(const std::string& shard);
  /// Asks the server to stop; returns once it acknowledged. Never
  /// auto-retried: a connection that dies after the send may mean the
  /// shutdown was already accepted.
  void shutdown();

  /// Total reconnects across the pool — how often the client survived a
  /// server restart (fault-injection tests assert this moved).
  std::uint64_t reconnects() const { return pool_.reconnects(); }

 private:
  wire::Frame roundtrip(wire::MessageType type, const std::string& payload,
                        wire::MessageType expected_reply, bool retryable);

  common::Endpoint endpoint_;
  wire::ChannelPool pool_;
};

}  // namespace goodones::serve
