#include "serve/model_registry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include <unistd.h>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/cache.hpp"
#include "core/sample_features.hpp"
#include "nn/serialize.hpp"

namespace goodones::serve {

namespace {

constexpr std::uint32_t kBundleMagic = 0x474F534D;  // "GOSM"
/// v2: bundle carries its generation (the adaptive loop's publication unit).
constexpr std::uint32_t kBundleVersion = 2;
/// Trailing sentinel: catches artifacts truncated after the last section.
constexpr std::uint32_t kBundleEnd = 0x454E4442;  // "ENDB"

constexpr std::uint32_t kProfilerMagic = 0x474F5250;  // "GORP"
constexpr std::uint32_t kProfilerVersion = 1;

constexpr std::uint32_t kLineageMagic = 0x474F4C4E;  // "GOLN"
constexpr std::uint32_t kLineageVersion = 1;

using common::SerializationError;

/// Reads a u32 element count and sanity-bounds it before any reserve():
/// a tampered count must raise the typed error, not a huge allocation.
std::uint32_t read_count(std::istream& in, const char* what) {
  const std::uint32_t count = nn::read_u32(in, what);
  if (count > (1u << 20)) {
    throw SerializationError(std::string("implausible count for ") + what +
                             " (corrupt artifact?)");
  }
  return count;
}

void write_spec(std::ostream& out, const core::DomainSpec& spec) {
  nn::write_string(out, spec.name);
  nn::write_string(out, spec.variant);
  nn::write_u64(out, spec.num_channels);
  nn::write_u64(out, spec.target_channel);
  nn::write_u32(out, static_cast<std::uint32_t>(spec.channel_names.size()));
  for (const auto& name : spec.channel_names) nn::write_string(out, name);
  nn::write_f64(out, spec.target_min);
  nn::write_f64(out, spec.target_max);
  nn::write_f64(out, spec.thresholds.low);
  nn::write_f64(out, spec.thresholds.high_baseline);
  nn::write_f64(out, spec.thresholds.high_active);
  spec.severity.save(out);
  nn::write_f64(out, spec.attack_box_min_baseline);
  nn::write_f64(out, spec.attack_box_min_active);
  nn::write_f64(out, spec.attack_box_max);
  nn::write_f64(out, spec.attack_harm_threshold);
  nn::write_u32(out, static_cast<std::uint32_t>(spec.context_channels.size()));
  for (const std::size_t c : spec.context_channels) nn::write_u64(out, c);
  nn::write_u64(out, spec.context_window_steps);
  nn::write_u64(out, spec.num_subsets);
}

core::DomainSpec read_spec(std::istream& in) {
  core::DomainSpec spec;
  spec.name = nn::read_string(in, "spec name");
  spec.variant = nn::read_string(in, "spec variant");
  spec.num_channels = nn::read_u64(in, "spec num channels");
  spec.target_channel = nn::read_u64(in, "spec target channel");
  const std::uint32_t n_names = read_count(in, "spec channel-name count");
  spec.channel_names.clear();
  spec.channel_names.reserve(n_names);
  for (std::uint32_t i = 0; i < n_names; ++i) {
    spec.channel_names.push_back(nn::read_string(in, "spec channel name"));
  }
  spec.target_min = nn::read_f64(in, "spec target min");
  spec.target_max = nn::read_f64(in, "spec target max");
  spec.thresholds.low = nn::read_f64(in, "spec threshold low");
  spec.thresholds.high_baseline = nn::read_f64(in, "spec threshold high baseline");
  spec.thresholds.high_active = nn::read_f64(in, "spec threshold high active");
  spec.severity.load(in);
  spec.attack_box_min_baseline = nn::read_f64(in, "spec box min baseline");
  spec.attack_box_min_active = nn::read_f64(in, "spec box min active");
  spec.attack_box_max = nn::read_f64(in, "spec box max");
  spec.attack_harm_threshold = nn::read_f64(in, "spec harm threshold");
  const std::uint32_t n_context = read_count(in, "spec context-channel count");
  spec.context_channels.clear();
  spec.context_channels.reserve(n_context);
  for (std::uint32_t i = 0; i < n_context; ++i) {
    spec.context_channels.push_back(nn::read_u64(in, "spec context channel"));
  }
  spec.context_window_steps = nn::read_u64(in, "spec context window steps");
  spec.num_subsets = nn::read_u64(in, "spec num subsets");
  if (spec.num_channels == 0 || spec.target_channel >= spec.num_channels) {
    throw SerializationError("serving bundle carries an invalid domain spec");
  }
  for (const std::size_t c : spec.context_channels) {
    if (c >= spec.num_channels) {
      throw SerializationError("serving bundle context channel out of range");
    }
  }
  return spec;
}

const char* kind_token(detect::DetectorKind kind) noexcept {
  switch (kind) {
    case detect::DetectorKind::kKnn: return "knn";
    case detect::DetectorKind::kOcsvm: return "ocsvm";
    case detect::DetectorKind::kMadGan: return "madgan";
  }
  return "?";
}

/// Serializes the complete bundle (no framing decisions; save() owns the
/// file, clone_serving_model() a stringstream).
void write_bundle(std::ostream& out, const ServingModel& model) {
  nn::write_u32(out, kBundleMagic);
  nn::write_u32(out, kBundleVersion);
  nn::write_string(out, model.domain_key);
  nn::write_u64(out, model.fingerprint);
  nn::write_u64(out, model.generation);
  nn::write_u32(out, static_cast<std::uint32_t>(model.detector_kind));
  write_spec(out, model.spec);

  nn::write_u32(out, static_cast<std::uint32_t>(model.entity_names.size()));
  for (const auto& name : model.entity_names) nn::write_string(out, name);
  std::vector<std::uint8_t> cluster_bytes;
  cluster_bytes.reserve(model.entity_cluster.size());
  for (const Cluster c : model.entity_cluster) {
    cluster_bytes.push_back(static_cast<std::uint8_t>(c));
  }
  nn::write_u8_vector(out, cluster_bytes);
  model.detector_scaler.save(out);

  nn::write_u32(out, static_cast<std::uint32_t>(model.forecasters.size()));
  for (const auto& forecaster : model.forecasters) forecaster.save_artifact(out);

  for (const auto& detector : model.cluster_detectors) {
    GO_EXPECTS(detector != nullptr);
    detector->save(out);
  }
  nn::write_u32(out, kBundleEnd);
}

/// Deserializes and cross-validates a bundle written by write_bundle.
ServingModel read_bundle(std::istream& in) {
  nn::expect_u32(in, kBundleMagic, "serving bundle magic");
  nn::expect_u32(in, kBundleVersion, "serving bundle version");

  ServingModel model;
  model.domain_key = nn::read_string(in, "bundle domain key");
  model.fingerprint = nn::read_u64(in, "bundle fingerprint");
  model.generation = nn::read_u64(in, "bundle generation");
  model.detector_kind =
      static_cast<detect::DetectorKind>(nn::read_u32(in, "bundle detector kind"));
  model.spec = read_spec(in);

  const std::uint32_t n_entities = read_count(in, "bundle entity count");
  model.entity_names.reserve(n_entities);
  for (std::uint32_t i = 0; i < n_entities; ++i) {
    model.entity_names.push_back(nn::read_string(in, "bundle entity name"));
  }
  const std::vector<std::uint8_t> cluster_bytes =
      nn::read_u8_vector(in, "bundle cluster assignment");
  if (cluster_bytes.size() != n_entities) {
    throw SerializationError("serving bundle cluster table size mismatch");
  }
  model.entity_cluster.reserve(n_entities);
  for (const std::uint8_t b : cluster_bytes) {
    if (b > 1) throw SerializationError("serving bundle carries an invalid cluster id");
    model.entity_cluster.push_back(static_cast<Cluster>(b));
  }
  model.detector_scaler.load(in);

  const std::uint32_t n_forecasters = read_count(in, "bundle forecaster count");
  if (n_forecasters != n_entities) {
    throw SerializationError("serving bundle forecaster/entity count mismatch");
  }
  model.forecasters.reserve(n_forecasters);
  for (std::uint32_t i = 0; i < n_forecasters; ++i) {
    model.forecasters.push_back(predict::BiLstmForecaster::load_artifact(in));
    if (model.forecasters.back().num_channels() != model.spec.num_channels) {
      throw SerializationError("serving bundle forecaster channel-count mismatch");
    }
  }

  // Cross-validate the scaler against the schema it will transform.
  if (model.detector_scaler.fitted() &&
      model.detector_scaler.num_features() != model.spec.num_channels) {
    throw SerializationError("serving bundle detector-scaler width mismatch");
  }

  for (auto& detector : model.cluster_detectors) {
    detector = detect::make_detector(model.detector_kind, detect::DetectorSuiteConfig{});
    if (detector == nullptr) {
      throw SerializationError("serving bundle carries an unknown detector kind");
    }
    detector->load(in);
    // A detector that is internally consistent but disagrees with the
    // domain schema must not serve: sample-level detectors consume
    // sample_feature_count-wide rows, window-level ones num_channels
    // columns. (0 = width unknown; nothing to check.)
    const std::size_t width = detector->input_width();
    const std::size_t expected =
        detector->granularity() == detect::InputGranularity::kSample
            ? core::sample_feature_count(model.spec)
            : model.spec.num_channels;
    if (width != 0 && width != expected) {
      throw SerializationError("serving bundle detector feature-width mismatch: artifact " +
                               std::to_string(width) + ", domain schema expects " +
                               std::to_string(expected));
    }
  }
  nn::expect_u32(in, kBundleEnd, "serving bundle end marker");
  return model;
}

/// Atomic publish: write to a per-writer temp file, rename into place.
template <typename WriteBody>
void atomic_write(const std::filesystem::path& path, WriteBody&& body) {
  // Unique temp name per writer: concurrent saves of the same key (two
  // fleet nodes racing "train once") must not interleave into one file.
  const std::filesystem::path tmp =
      path.string() + ".tmp." + std::to_string(::getpid());
  try {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw SerializationError("cannot open registry artifact for writing: " + tmp.string());
    }
    body(out);
    if (!out) throw SerializationError("registry artifact write failed: " + tmp.string());
    out.close();
    std::filesystem::rename(tmp, path);  // atomic publish
  } catch (...) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);  // never leave stale temp files
    throw;
  }
}

}  // namespace

const char* to_string(Cluster cluster) noexcept {
  return cluster == Cluster::kLessVulnerable ? "less-vulnerable" : "more-vulnerable";
}

std::size_t ServingModel::entity_index(std::string_view name) const {
  for (std::size_t i = 0; i < entity_names.size(); ++i) {
    if (entity_names[i] == name) return i;
  }
  throw common::PreconditionError("unknown entity in score request: " + std::string(name));
}

const detect::AnomalyDetector& ServingModel::detector_for(std::size_t entity) const {
  GO_EXPECTS(entity < entity_cluster.size());
  const auto& detector =
      cluster_detectors[static_cast<std::size_t>(entity_cluster[entity])];
  GO_EXPECTS(detector != nullptr);
  return *detector;
}

RegistryKey registry_key(const core::RiskProfilingFramework& framework,
                         detect::DetectorKind kind) {
  RegistryKey key;
  key.domain_key = core::domain_cache_key(framework.domain().spec());
  key.fingerprint = core::config_fingerprint(framework.config());
  key.detector_kind = kind;
  return key;
}

ServingModel build_serving_model(core::RiskProfilingFramework& framework,
                                 detect::DetectorKind kind) {
  return build_serving_model(framework, kind, framework.profiling().clusters,
                             /*generation=*/0);
}

ServingModel build_serving_model(core::RiskProfilingFramework& framework,
                                 detect::DetectorKind kind,
                                 const core::VulnerabilityClusters& partition,
                                 std::uint64_t generation) {
  const RegistryKey key = registry_key(framework, kind);
  const auto& entities = framework.entities();
  const core::VulnerabilityClusters clusters = framework.rebuild_routing(partition);

  ServingModel model;
  model.domain_key = key.domain_key;
  model.fingerprint = key.fingerprint;
  model.generation = generation;
  model.spec = framework.domain().spec();
  model.detector_kind = kind;
  model.detector_scaler = framework.detector_scaler();

  model.entity_names.reserve(entities.size());
  for (const auto& entity : entities) model.entity_names.push_back(entity.name);

  model.entity_cluster.assign(entities.size(), Cluster::kLessVulnerable);
  for (const std::size_t p : clusters.more_vulnerable) {
    model.entity_cluster[p] = Cluster::kMoreVulnerable;
  }

  model.forecasters.reserve(entities.size());
  for (std::size_t i = 0; i < entities.size(); ++i) {
    model.forecasters.push_back(framework.models().personalized(i));
  }

  // One detector per cluster, each trained on its own cluster's victims
  // (the paper's step 5: the less-vulnerable detector is the proposed
  // defense; the more-vulnerable one is kept for routing completeness).
  // An empty cluster (the online profiler may declare everyone
  // less-vulnerable) falls back to the full population so its detector
  // slot still serves.
  common::log_info("building serving bundle (", kind_token(kind), ", ",
                   entities.size(), " entities, generation ", generation, ")");
  const auto victims_or_all = [&](const std::vector<std::size_t>& victims) {
    if (!victims.empty()) return victims;
    std::vector<std::size_t> all(entities.size());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    return all;
  };
  model.cluster_detectors[0] = std::move(
      framework.train_detector(kind, victims_or_all(clusters.less_vulnerable)).detector);
  model.cluster_detectors[1] = std::move(
      framework.train_detector(kind, victims_or_all(clusters.more_vulnerable)).detector);
  return model;
}

ServingModel clone_serving_model(const ServingModel& model) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_bundle(buffer, model);
  buffer.seekg(0);
  return read_bundle(buffer);
}

ServingModel slice_serving_model(const ServingModel& model,
                                 const std::vector<std::string>& entities) {
  GO_EXPECTS(!entities.empty());
  // Validate the member set up front: entity_index throws on unknowns, the
  // keep-count comparison catches duplicates (two requests for one entity
  // would keep it once and desync the counts).
  std::vector<bool> keep(model.entity_names.size(), false);
  for (const auto& name : entities) {
    const std::size_t index = model.entity_index(name);
    if (keep[index]) {
      throw common::PreconditionError("slice_serving_model: duplicate entity: " + name);
    }
    keep[index] = true;
  }

  ServingModel slice = clone_serving_model(model);
  // Filter the per-entity columns in TRAINING order (stable regardless of
  // the order the caller listed the members in).
  std::size_t write = 0;
  for (std::size_t i = 0; i < keep.size(); ++i) {
    if (!keep[i]) continue;
    if (write != i) {
      slice.entity_names[write] = std::move(slice.entity_names[i]);
      slice.entity_cluster[write] = slice.entity_cluster[i];
      slice.forecasters[write] = std::move(slice.forecasters[i]);
    }
    ++write;
  }
  slice.entity_names.resize(write);
  slice.entity_cluster.resize(write);
  // erase, not resize: BiLstmForecaster has no default constructor.
  slice.forecasters.erase(
      slice.forecasters.begin() + static_cast<std::ptrdiff_t>(write),
      slice.forecasters.end());

  // A deterministic member-set tag (insertion-order independent: hashes of
  // the kept names XOR-combined) keeps the slice's registry identity apart
  // from the full bundle's and from differently-sliced siblings.
  std::uint64_t tag = 0x736c696365ull;  // "slice"
  for (const auto& name : slice.entity_names) {
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ull;
    }
    tag ^= h;
  }
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), "#slice-%016llx",
                static_cast<unsigned long long>(tag));
  slice.domain_key += suffix;
  return slice;
}

ModelRegistry::ModelRegistry() : root_(core::artifacts_dir() / "models") {
  std::filesystem::create_directories(root_);
  sweep_orphaned_tmp_files();
}

ModelRegistry::ModelRegistry(std::filesystem::path root) : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
  sweep_orphaned_tmp_files();
}

void ModelRegistry::sweep_orphaned_tmp_files() const {
  // A writer that crashed between temp-write and rename leaves
  // "<artifact>.bin.tmp.<pid>" behind; those bytes were never published.
  // Only stale temps are removed: a peer process may be mid-save of a
  // fresh temp right now (two fleet nodes racing "train once" share this
  // root), and deleting its live temp would fail an atomic save that was
  // about to succeed. Live artifacts end in ".bin" and are never matched.
  constexpr auto kOrphanAge = std::chrono::minutes(10);
  const auto now = std::filesystem::file_time_type::clock::now();
  for (const auto& entry : std::filesystem::directory_iterator(root_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.find(".bin.tmp.") == std::string::npos) continue;
    std::error_code ec;
    const auto written = std::filesystem::last_write_time(entry.path(), ec);
    if (ec || now - written < kOrphanAge) continue;
    std::filesystem::remove(entry.path(), ec);
    common::log_warn("swept orphaned registry temp file: ", entry.path().string());
  }
}

std::filesystem::path ModelRegistry::path_for(const RegistryKey& key) const {
  std::ostringstream name;
  name << "serving_" << key.domain_key << "_" << std::hex << key.fingerprint << "_"
       << kind_token(key.detector_kind) << "_g" << std::dec << key.generation << ".bin";
  return root_ / name.str();
}

std::filesystem::path ModelRegistry::profiler_path_for(const RegistryKey& key) const {
  std::ostringstream name;
  name << "profiler_" << key.domain_key << "_" << std::hex << key.fingerprint << "_"
       << kind_token(key.detector_kind) << ".bin";
  return root_ / name.str();
}

bool ModelRegistry::contains(const RegistryKey& key) const {
  return std::filesystem::exists(path_for(key));
}

std::optional<RegistryKey> ModelRegistry::latest(const RegistryKey& key) const {
  // Generations share the key's filename up to "_g<generation>.bin"; scan
  // for the highest published one.
  RegistryKey base = key;
  base.generation = 0;
  const std::string stem = path_for(base).filename().string();
  const std::string prefix = stem.substr(0, stem.size() - std::string("0.bin").size());

  std::optional<RegistryKey> newest;
  if (!std::filesystem::exists(root_)) return newest;
  for (const auto& entry : std::filesystem::directory_iterator(root_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() + 4 || name.compare(0, prefix.size(), prefix) != 0 ||
        name.substr(name.size() - 4) != ".bin") {
      continue;
    }
    const std::string digits = name.substr(prefix.size(), name.size() - prefix.size() - 4);
    // A generation that cannot fit u64 is not one of ours — skip it like
    // every other malformed filename instead of letting stoull throw.
    if (digits.empty() || digits.size() > 19 ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    RegistryKey candidate = base;
    candidate.generation = std::stoull(digits);
    if (!newest || candidate.generation > newest->generation) newest = candidate;
  }
  return newest;
}

void ModelRegistry::save(const ServingModel& model) const {
  RegistryKey key;
  key.domain_key = model.domain_key;
  key.fingerprint = model.fingerprint;
  key.detector_kind = model.detector_kind;
  key.generation = model.generation;
  const std::filesystem::path path = path_for(key);
  atomic_write(path, [&](std::ostream& out) { write_bundle(out, model); });
  common::log_info("persisted serving bundle: ", path.string());
}

ServingModel ModelRegistry::load(const RegistryKey& key) const {
  const std::filesystem::path path = path_for(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SerializationError("no serving bundle for key (domain " + key.domain_key +
                             "): " + path.string());
  }
  ServingModel model = read_bundle(in);
  // Stale-artifact guard: a bundle that does not match the requested
  // training config must never be served (a file copied or renamed across
  // config changes would otherwise silently score with old semantics).
  if (model.domain_key != key.domain_key) {
    throw SerializationError("serving bundle domain mismatch: artifact '" +
                             model.domain_key + "', requested '" + key.domain_key + "'");
  }
  if (model.fingerprint != key.fingerprint) {
    throw SerializationError("stale serving bundle: config fingerprint mismatch for " +
                             path.string());
  }
  if (model.detector_kind != key.detector_kind) {
    throw SerializationError("serving bundle detector kind mismatch: " + path.string());
  }
  if (model.generation != key.generation) {
    throw SerializationError("serving bundle generation mismatch: " + path.string());
  }
  return model;
}

void ModelRegistry::save_profiler(const RegistryKey& key,
                                  const risk::OnlineRiskProfiler& profiler) const {
  const std::filesystem::path path = profiler_path_for(key);
  atomic_write(path, [&](std::ostream& out) {
    nn::write_u32(out, kProfilerMagic);
    nn::write_u32(out, kProfilerVersion);
    nn::write_string(out, key.domain_key);
    nn::write_u64(out, key.fingerprint);
    nn::write_u32(out, static_cast<std::uint32_t>(key.detector_kind));
    profiler.save(out);
  });
}

bool ModelRegistry::contains_profiler(const RegistryKey& key) const {
  return std::filesystem::exists(profiler_path_for(key));
}

void ModelRegistry::load_profiler(const RegistryKey& key,
                                  risk::OnlineRiskProfiler& profiler) const {
  const std::filesystem::path path = profiler_path_for(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SerializationError("no profiler state for key (domain " + key.domain_key +
                             "): " + path.string());
  }
  nn::expect_u32(in, kProfilerMagic, "profiler artifact magic");
  nn::expect_u32(in, kProfilerVersion, "profiler artifact version");
  if (nn::read_string(in, "profiler artifact domain key") != key.domain_key) {
    throw SerializationError("profiler artifact domain mismatch: " + path.string());
  }
  if (nn::read_u64(in, "profiler artifact fingerprint") != key.fingerprint) {
    throw SerializationError("stale profiler artifact: fingerprint mismatch for " +
                             path.string());
  }
  if (static_cast<detect::DetectorKind>(nn::read_u32(in, "profiler artifact kind")) !=
      key.detector_kind) {
    throw SerializationError("profiler artifact detector kind mismatch: " + path.string());
  }
  profiler.load(in);
}

std::filesystem::path ModelRegistry::lineage_path_for(const RegistryKey& key) const {
  std::ostringstream name;
  name << "lineage_" << key.domain_key << "_" << std::hex << key.fingerprint << "_"
       << kind_token(key.detector_kind) << ".bin";
  return root_ / name.str();
}

void ModelRegistry::append_lineage(const RegistryKey& key,
                                   const LineageEvent& event) const {
  // Events are rare (one per install/promote/rollback), so append is a
  // read-extend-rewrite through the same atomic_write every other artifact
  // uses — readers never observe a half-written lineage file.
  std::vector<LineageEvent> events;
  if (contains_lineage(key)) events = load_lineage(key);
  events.push_back(event);
  atomic_write(lineage_path_for(key), [&](std::ostream& out) {
    nn::write_u32(out, kLineageMagic);
    nn::write_u32(out, kLineageVersion);
    nn::write_string(out, key.domain_key);
    nn::write_u64(out, key.fingerprint);
    nn::write_u32(out, static_cast<std::uint32_t>(key.detector_kind));
    nn::write_u64(out, events.size());
    for (const LineageEvent& e : events) {
      nn::write_u64(out, e.generation);
      nn::write_u64(out, e.primary_generation);
      nn::write_u32(out, static_cast<std::uint32_t>(e.action));
      nn::write_u64(out, e.mirrored_windows);
    }
  });
}

bool ModelRegistry::contains_lineage(const RegistryKey& key) const {
  return std::filesystem::exists(lineage_path_for(key));
}

std::vector<LineageEvent> ModelRegistry::load_lineage(const RegistryKey& key) const {
  const std::filesystem::path path = lineage_path_for(key);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SerializationError("no lineage for key (domain " + key.domain_key +
                             "): " + path.string());
  }
  nn::expect_u32(in, kLineageMagic, "lineage artifact magic");
  nn::expect_u32(in, kLineageVersion, "lineage artifact version");
  if (nn::read_string(in, "lineage artifact domain key") != key.domain_key) {
    throw SerializationError("lineage artifact domain mismatch: " + path.string());
  }
  if (nn::read_u64(in, "lineage artifact fingerprint") != key.fingerprint) {
    throw SerializationError("stale lineage artifact: fingerprint mismatch for " +
                             path.string());
  }
  if (static_cast<detect::DetectorKind>(nn::read_u32(in, "lineage artifact kind")) !=
      key.detector_kind) {
    throw SerializationError("lineage artifact detector kind mismatch: " + path.string());
  }
  const std::uint64_t count = nn::read_u64(in, "lineage event count");
  // A count beyond any plausible promotion history means a corrupt file,
  // not a big one — refuse before allocating.
  if (count > (1ull << 20)) {
    throw SerializationError("lineage event count out of range: " + std::to_string(count));
  }
  std::vector<LineageEvent> events(count);
  for (LineageEvent& e : events) {
    e.generation = nn::read_u64(in, "lineage event generation");
    e.primary_generation = nn::read_u64(in, "lineage event primary generation");
    const std::uint32_t action = nn::read_u32(in, "lineage event action");
    if (action > static_cast<std::uint32_t>(LineageAction::kRolledBack)) {
      throw SerializationError("lineage event action out of range: " +
                               std::to_string(action));
    }
    e.action = static_cast<LineageAction>(action);
    e.mirrored_windows = nn::read_u64(in, "lineage event mirrored windows");
  }
  return events;
}

std::vector<std::filesystem::path> ModelRegistry::list() const {
  std::vector<std::filesystem::path> out;
  if (!std::filesystem::exists(root_)) return out;
  for (const auto& entry : std::filesystem::directory_iterator(root_)) {
    if (entry.is_regular_file() && entry.path().extension() == ".bin") {
      out.push_back(entry.path());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace goodones::serve
