// Consistent-hash ring: how the mesh router assigns entities to shards.
//
// Classic Karger-style ring with virtual nodes: every shard is hashed onto
// a 64-bit circle `vnodes` times, a key is owned by the first shard point
// clockwise of the key's hash. The two properties the mesh leans on (both
// pinned by tests/hash_ring_test.cpp):
//
//   * Determinism. Placement is a pure function of (shard names, vnodes,
//     key) — independent of insertion order, process, run, or platform.
//     The hash is our own FNV-1a-64 (no std::hash, whose values are
//     implementation-defined), so a router restart, a second router
//     replica, and the test that pre-slices bundles per shard all compute
//     the SAME owner for every entity.
//   * Bounded movement. Adding a shard to an N-shard ring steals keys
//     ONLY for the new shard (expected K/(N+1) of them); removing one
//     moves ONLY the removed shard's keys. No unrelated key ever remaps —
//     that is what makes shard maintenance (drain, replace) cheap.
//
// Balance: with v vnodes per shard, per-shard load concentrates around
// K/N with relative spread ~1/sqrt(v). The default 128 vnodes keeps the
// heaviest shard within ~1.35x of fair share for realistic shard counts;
// the property test documents and pins the measured factor.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace goodones::serve {

/// FNV-1a 64-bit with an avalanche finalizer — stable across platforms and
/// standard libraries, with full diffusion even on short sequential keys.
std::uint64_t stable_hash64(std::string_view bytes) noexcept;

class HashRing {
 public:
  explicit HashRing(std::size_t vnodes = 128);

  /// Adds a shard by name (the ring identity; endpoints live elsewhere so
  /// a shard can change address without remapping keys). Throws
  /// common::PreconditionError on an empty name or a duplicate.
  void add(const std::string& shard);

  /// Removes a shard; false when no such shard is on the ring.
  bool remove(const std::string& shard);

  bool contains(std::string_view shard) const noexcept;
  bool empty() const noexcept { return shards_.empty(); }
  std::size_t size() const noexcept { return shards_.size(); }
  std::size_t vnodes() const noexcept { return vnodes_; }

  /// Shard names in insertion-independent (sorted) order.
  std::vector<std::string> shards() const;

  /// The shard owning `key`. Throws common::PreconditionError on an empty
  /// ring (the router turns that into an Unavailable error frame).
  const std::string& owner(std::string_view key) const;

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t shard;  ///< index into shards_
  };

  void sort_points();
  void insert_points(std::uint32_t shard_index);
  void rebuild_points();

  std::size_t vnodes_;
  std::vector<std::string> shards_;
  std::vector<Point> points_;  ///< sorted by hash
};

}  // namespace goodones::serve
