#include "serve/wire.hpp"

#include <cstring>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "nn/serialize.hpp"

namespace goodones::serve::wire {

namespace {

constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 8;

void put_u32(char* out, std::uint32_t v) { std::memcpy(out, &v, sizeof(v)); }
void put_u64(char* out, std::uint64_t v) { std::memcpy(out, &v, sizeof(v)); }
std::uint32_t get_u32(const char* in) {
  std::uint32_t v;
  std::memcpy(&v, in, sizeof(v));
  return v;
}
std::uint64_t get_u64(const char* in) {
  std::uint64_t v;
  std::memcpy(&v, in, sizeof(v));
  return v;
}

/// Reads a u32 that must fall in [0, max]; names `what` on violation.
std::uint32_t read_bounded_u32(std::istream& in, std::uint32_t max, const char* what) {
  const std::uint32_t value = nn::read_u32(in, what);
  if (value > max) {
    throw common::SerializationError(std::string("wire: ") + what + " out of range: " +
                                     std::to_string(value));
  }
  return value;
}

/// All payloads must be consumed exactly; trailing bytes mean the peer and
/// we disagree about the layout — corrupt, not ignorable.
void expect_consumed(std::istream& in, const char* what) {
  if (in.peek() != std::char_traits<char>::eof()) {
    throw common::SerializationError(std::string("wire: trailing bytes after ") + what);
  }
}

/// Guards attacker-controlled element counts before any reserve/allocation:
/// every encoded element costs at least one payload byte, so a count
/// exceeding the payload size is corrupt by construction (and must surface
/// as the typed SerializationError, never std::length_error/bad_alloc).
std::size_t checked_count(std::uint64_t count, const std::string& payload,
                          const char* what) {
  if (count > payload.size()) {
    throw common::SerializationError(std::string("wire: ") + what + " count " +
                                     std::to_string(count) +
                                     " exceeds the payload size");
  }
  return static_cast<std::size_t>(count);
}

}  // namespace

void send_frame(common::Socket& socket, MessageType type, std::string_view payload) {
  std::string frame(kHeaderBytes + payload.size(), '\0');
  put_u32(frame.data(), kMagic);
  put_u32(frame.data() + 4, kVersion);
  put_u32(frame.data() + 8, static_cast<std::uint32_t>(type));
  put_u64(frame.data() + 12, payload.size());
  if (!payload.empty()) {
    std::memcpy(frame.data() + kHeaderBytes, payload.data(), payload.size());
  }
  socket.write_all(frame.data(), frame.size());
}

std::optional<Frame> recv_frame(common::Socket& socket) {
  char header[kHeaderBytes];
  switch (socket.read_exact(header, sizeof(header))) {
    case common::Socket::ReadResult::kClosed:
      return std::nullopt;
    case common::Socket::ReadResult::kTruncated:
      throw common::SerializationError("wire: connection closed mid-header");
    case common::Socket::ReadResult::kOk:
      break;
  }
  if (get_u32(header) != kMagic) {
    throw common::SerializationError("wire: bad frame magic");
  }
  if (get_u32(header + 4) != kVersion) {
    throw ProtocolVersionError("wire: unsupported protocol version " +
                               std::to_string(get_u32(header + 4)));
  }
  // Any type value is accepted at this layer — the forward-compatibility
  // rule: a well-framed unknown type must reach the dispatcher (which
  // answers bad-request and keeps the connection), not read as corruption.
  const std::uint32_t raw_type = get_u32(header + 8);
  const std::uint64_t length = get_u64(header + 12);
  if (length > kMaxPayloadBytes) {
    throw common::SerializationError("wire: payload length " + std::to_string(length) +
                                     " exceeds the frame limit");
  }
  Frame frame;
  frame.type = static_cast<MessageType>(raw_type);
  frame.payload.resize(static_cast<std::size_t>(length));
  if (length > 0 &&
      socket.read_exact(frame.payload.data(), frame.payload.size()) !=
          common::Socket::ReadResult::kOk) {
    throw common::SerializationError("wire: connection closed mid-payload");
  }
  return frame;
}

std::string encode_score_request(const ScoreRequest& request) {
  std::ostringstream out;
  nn::write_string(out, request.entity);
  nn::write_u64(out, request.windows.size());
  for (const TelemetryWindow& window : request.windows) {
    nn::write_u32(out, static_cast<std::uint32_t>(window.regime));
    nn::write_matrix(out, window.features);
  }
  return std::move(out).str();
}

ScoreRequest decode_score_request(const std::string& payload) {
  std::istringstream in(payload);
  ScoreRequest request;
  request.entity = nn::read_string(in, "score request entity");
  const std::size_t count = checked_count(
      nn::read_u64(in, "score request window count"), payload, "score request window");
  request.windows.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    TelemetryWindow window;
    window.regime = static_cast<data::Regime>(read_bounded_u32(in, 1, "window regime"));
    window.features = nn::read_matrix(in);
    request.windows.push_back(std::move(window));
  }
  expect_consumed(in, "score request");
  return request;
}

std::string encode_score_response(const ScoreResponse& response) {
  std::ostringstream out;
  nn::write_u64(out, response.entity_index);
  nn::write_u32(out, static_cast<std::uint32_t>(response.cluster));
  nn::write_u64(out, response.generation);
  nn::write_u64(out, response.windows.size());
  for (const WindowScore& score : response.windows) {
    nn::write_f64(out, score.forecast);
    nn::write_f64(out, score.residual);
    nn::write_u32(out, static_cast<std::uint32_t>(score.observed_state));
    nn::write_u32(out, static_cast<std::uint32_t>(score.predicted_state));
    nn::write_f64(out, score.anomaly_score);
    nn::write_u32(out, score.flagged ? 1 : 0);
    nn::write_f64(out, score.risk);
  }
  return std::move(out).str();
}

ScoreResponse decode_score_response(const std::string& payload) {
  std::istringstream in(payload);
  ScoreResponse response;
  response.entity_index =
      static_cast<std::size_t>(nn::read_u64(in, "score response entity index"));
  response.cluster = static_cast<Cluster>(read_bounded_u32(in, 1, "response cluster"));
  response.generation = nn::read_u64(in, "score response generation");
  const std::size_t count =
      checked_count(nn::read_u64(in, "score response window count"), payload,
                    "score response window");
  response.windows.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    WindowScore score;
    score.forecast = nn::read_f64(in, "window forecast");
    score.residual = nn::read_f64(in, "window residual");
    score.observed_state =
        static_cast<data::StateLabel>(read_bounded_u32(in, 2, "observed state"));
    score.predicted_state =
        static_cast<data::StateLabel>(read_bounded_u32(in, 2, "predicted state"));
    score.anomaly_score = nn::read_f64(in, "window anomaly score");
    score.flagged = read_bounded_u32(in, 1, "window flag") == 1;
    score.risk = nn::read_f64(in, "window risk");
    response.windows.push_back(score);
  }
  expect_consumed(in, "score response");
  return response;
}

std::string encode_stats(const StatsSnapshot& stats) {
  std::ostringstream out;
  nn::write_u64(out, stats.size());
  for (const auto& [name, value] : stats) {
    nn::write_string(out, name);
    nn::write_u64(out, value);
  }
  return std::move(out).str();
}

StatsSnapshot decode_stats(const std::string& payload) {
  std::istringstream in(payload);
  const std::size_t count =
      checked_count(nn::read_u64(in, "stats count"), payload, "stats entry");
  StatsSnapshot stats;
  stats.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string name = nn::read_string(in, "stats counter name");
    const std::uint64_t value = nn::read_u64(in, "stats counter value");
    stats.emplace_back(std::move(name), value);
  }
  expect_consumed(in, "stats");
  return stats;
}

std::string encode_refresh_reply(const RefreshReply& reply) {
  std::ostringstream out;
  nn::write_u32(out, reply.refreshed ? 1 : 0);
  nn::write_u64(out, reply.generation);
  return std::move(out).str();
}

RefreshReply decode_refresh_reply(const std::string& payload) {
  std::istringstream in(payload);
  RefreshReply reply;
  reply.refreshed = read_bounded_u32(in, 1, "refresh flag") == 1;
  reply.generation = nn::read_u64(in, "refresh generation");
  expect_consumed(in, "refresh reply");
  return reply;
}

std::string encode_error(const ErrorFrame& error) {
  std::ostringstream out;
  nn::write_u32(out, static_cast<std::uint32_t>(error.code));
  nn::write_string(out, error.message);
  return std::move(out).str();
}

ErrorFrame decode_error(const std::string& payload) {
  std::istringstream in(payload);
  ErrorFrame error;
  const std::uint32_t code = read_bounded_u32(
      in, static_cast<std::uint32_t>(ErrorCode::kUnavailable), "error code");
  if (code == 0) throw common::SerializationError("wire: error code out of range: 0");
  error.code = static_cast<ErrorCode>(code);
  error.message = nn::read_string(in, "error message");
  expect_consumed(in, "error frame");
  return error;
}

std::string encode_health_reply(const HealthReply& reply) {
  std::ostringstream out;
  nn::write_u32(out, reply.draining ? 1 : 0);
  nn::write_u64(out, reply.generation);
  return std::move(out).str();
}

HealthReply decode_health_reply(const std::string& payload) {
  std::istringstream in(payload);
  HealthReply reply;
  reply.draining = read_bounded_u32(in, 1, "health draining flag") == 1;
  reply.generation = nn::read_u64(in, "health generation");
  expect_consumed(in, "health reply");
  return reply;
}

std::string encode_drain_request(const DrainRequest& request) {
  std::ostringstream out;
  nn::write_string(out, request.shard);
  return std::move(out).str();
}

DrainRequest decode_drain_request(const std::string& payload) {
  std::istringstream in(payload);
  DrainRequest request;
  request.shard = nn::read_string(in, "drain shard name");
  expect_consumed(in, "drain request");
  return request;
}

std::string encode_drain_reply(const DrainReply& reply) {
  std::ostringstream out;
  nn::write_u32(out, reply.drained ? 1 : 0);
  nn::write_string(out, reply.message);
  return std::move(out).str();
}

DrainReply decode_drain_reply(const std::string& payload) {
  std::istringstream in(payload);
  DrainReply reply;
  reply.drained = read_bounded_u32(in, 1, "drain flag") == 1;
  reply.message = nn::read_string(in, "drain message");
  expect_consumed(in, "drain reply");
  return reply;
}

std::string encode_ingest_request(const IngestRequest& request) {
  std::ostringstream out;
  nn::write_string(out, request.entity);
  nn::write_matrix(out, request.ticks);
  std::vector<std::uint8_t> regimes;
  regimes.reserve(request.regimes.size());
  for (const data::Regime r : request.regimes) {
    regimes.push_back(static_cast<std::uint8_t>(r));
  }
  nn::write_u8_vector(out, regimes);
  return std::move(out).str();
}

IngestRequest decode_ingest_request(const std::string& payload) {
  std::istringstream in(payload);
  IngestRequest request;
  request.entity = nn::read_string(in, "ingest entity");
  request.ticks = nn::read_matrix(in);
  const std::vector<std::uint8_t> regimes = nn::read_u8_vector(in, "ingest regimes");
  if (regimes.size() != request.ticks.rows()) {
    throw common::SerializationError(
        "wire: ingest regime count " + std::to_string(regimes.size()) +
        " disagrees with tick count " + std::to_string(request.ticks.rows()));
  }
  request.regimes.reserve(regimes.size());
  for (const std::uint8_t r : regimes) {
    if (r > static_cast<std::uint8_t>(data::Regime::kActive)) {
      throw common::SerializationError("wire: ingest regime out of range: " +
                                       std::to_string(r));
    }
    request.regimes.push_back(static_cast<data::Regime>(r));
  }
  expect_consumed(in, "ingest request");
  return request;
}

std::string encode_ingest_reply(const IngestReply& reply) {
  std::ostringstream out;
  nn::write_u64(out, reply.accepted);
  nn::write_u64(out, reply.total_ticks);
  return std::move(out).str();
}

IngestReply decode_ingest_reply(const std::string& payload) {
  std::istringstream in(payload);
  IngestReply reply;
  reply.accepted = nn::read_u64(in, "ingest accepted count");
  reply.total_ticks = nn::read_u64(in, "ingest total ticks");
  expect_consumed(in, "ingest reply");
  return reply;
}

std::string encode_score_latest_request(const ScoreLatestRequest& request) {
  std::ostringstream out;
  nn::write_string(out, request.entity);
  nn::write_u64(out, request.count);
  nn::write_u64(out, request.seq_len);
  return std::move(out).str();
}

ScoreLatestRequest decode_score_latest_request(const std::string& payload) {
  std::istringstream in(payload);
  ScoreLatestRequest request;
  request.entity = nn::read_string(in, "score-latest entity");
  // Protocol-level caps (2^20): a count or geometry beyond them cannot be a
  // legitimate request, and bounding here keeps a hostile frame from
  // driving giant downstream allocations.
  constexpr std::uint64_t kMax = 1ull << 20;
  request.count = nn::read_u64(in, "score-latest window count");
  if (request.count > kMax) {
    throw common::SerializationError("wire: score-latest window count out of range: " +
                                     std::to_string(request.count));
  }
  request.seq_len = nn::read_u64(in, "score-latest seq_len");
  if (request.seq_len > kMax) {
    throw common::SerializationError("wire: score-latest seq_len out of range: " +
                                     std::to_string(request.seq_len));
  }
  expect_consumed(in, "score-latest request");
  return request;
}

std::string encode_promote_request(const PromoteRequest& request) {
  std::ostringstream out;
  nn::write_u64(out, request.generation);
  return std::move(out).str();
}

PromoteRequest decode_promote_request(const std::string& payload) {
  std::istringstream in(payload);
  PromoteRequest request;
  request.generation = nn::read_u64(in, "promote generation");
  expect_consumed(in, "promote request");
  return request;
}

std::string encode_promote_reply(const PromoteReply& reply) {
  std::ostringstream out;
  nn::write_u32(out, reply.applied ? 1 : 0);
  nn::write_u64(out, reply.generation);
  return std::move(out).str();
}

PromoteReply decode_promote_reply(const std::string& payload) {
  std::istringstream in(payload);
  PromoteReply reply;
  reply.applied = read_bounded_u32(in, 1, "promote applied flag") == 1;
  reply.generation = nn::read_u64(in, "promote reply generation");
  expect_consumed(in, "promote reply");
  return reply;
}

std::string encode_rollback_request(const RollbackRequest& request) {
  std::ostringstream out;
  nn::write_u64(out, request.generation);
  return std::move(out).str();
}

RollbackRequest decode_rollback_request(const std::string& payload) {
  std::istringstream in(payload);
  RollbackRequest request;
  request.generation = nn::read_u64(in, "rollback generation");
  expect_consumed(in, "rollback request");
  return request;
}

std::string encode_rollback_reply(const RollbackReply& reply) {
  std::ostringstream out;
  nn::write_u32(out, reply.applied ? 1 : 0);
  nn::write_u64(out, reply.generation);
  return std::move(out).str();
}

RollbackReply decode_rollback_reply(const std::string& payload) {
  std::istringstream in(payload);
  RollbackReply reply;
  reply.applied = read_bounded_u32(in, 1, "rollback applied flag") == 1;
  reply.generation = nn::read_u64(in, "rollback reply generation");
  expect_consumed(in, "rollback reply");
  return reply;
}

std::string peek_score_entity(const std::string& payload) {
  std::istringstream in(payload);
  // Deliberately no expect_consumed: the windows after the name are the
  // backend's to validate — the router routes on the name alone and
  // forwards the payload bytes untouched.
  return nn::read_string(in, "score request entity");
}

const char* to_string(MessageType type) noexcept {
  switch (type) {
    case MessageType::kScore: return "Score";
    case MessageType::kScoreReply: return "ScoreReply";
    case MessageType::kStats: return "Stats";
    case MessageType::kStatsReply: return "StatsReply";
    case MessageType::kRefresh: return "Refresh";
    case MessageType::kRefreshReply: return "RefreshReply";
    case MessageType::kShutdown: return "Shutdown";
    case MessageType::kShutdownReply: return "ShutdownReply";
    case MessageType::kError: return "Error";
    case MessageType::kHealth: return "Health";
    case MessageType::kHealthReply: return "HealthReply";
    case MessageType::kDrain: return "Drain";
    case MessageType::kDrainReply: return "DrainReply";
    case MessageType::kIngest: return "Ingest";
    case MessageType::kIngestReply: return "IngestReply";
    case MessageType::kScoreLatest: return "ScoreLatest";
    case MessageType::kScoreLatestReply: return "ScoreLatestReply";
    case MessageType::kPromote: return "Promote";
    case MessageType::kPromoteReply: return "PromoteReply";
    case MessageType::kRollback: return "Rollback";
    case MessageType::kRollbackReply: return "RollbackReply";
  }
  return "?";
}

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kMalformedFrame: return "malformed-frame";
    case ErrorCode::kUnsupportedVersion: return "unsupported-version";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kUnavailable: return "unavailable";
  }
  return "?";
}

// --- FrameChannel ------------------------------------------------------------

FrameChannel::FrameChannel(common::Endpoint endpoint, FrameChannelConfig config)
    : endpoint_(std::move(endpoint)), config_(std::move(config)) {}

void FrameChannel::ensure_connected() {
  if (socket_.valid()) return;
  socket_ = common::connect_with_backoff(endpoint_, config_.backoff);
  if (config_.recv_timeout_ms > 0) socket_.set_recv_timeout_ms(config_.recv_timeout_ms);
  if (was_connected_) ++reconnects_;
  was_connected_ = true;
}

Frame FrameChannel::roundtrip(MessageType type, std::string_view payload, bool retryable) {
  const std::size_t rounds = (retryable && config_.reconnect) ? config_.retry_rounds : 1;
  for (std::size_t round = 1;; ++round) {
    try {
      ensure_connected();
      send_frame(socket_, type, payload);
      std::optional<Frame> reply = recv_frame(socket_);
      if (!reply) {
        // The server closed cleanly before answering: a restarting shard
        // draining its listener looks exactly like this, so it follows
        // the same retry rules as a torn connection.
        throw common::SocketError("server closed the connection before replying");
      }
      return std::move(*reply);
    } catch (const common::SocketError&) {
      // The connection is unusable (dial failed after its backoff budget,
      // or it died mid-exchange); the NEXT round starts from a fresh dial.
      socket_.close();
      if (round >= rounds) throw;
    }
    // Content-level SerializationErrors propagate immediately: the bytes
    // arrived fine, retrying would just replay the disagreement.
  }
}

void FrameChannel::close() noexcept { socket_.close(); }

// --- ChannelPool -------------------------------------------------------------

ChannelPool::ChannelPool(common::Endpoint endpoint, FrameChannelConfig config,
                         std::size_t capacity)
    : endpoint_(std::move(endpoint)),
      config_(std::move(config)),
      capacity_(capacity == 0 ? 1 : capacity) {}

ChannelPool::Lease::Lease(Lease&& other) noexcept
    : pool_(std::exchange(other.pool_, nullptr)),
      channel_(std::exchange(other.channel_, nullptr)) {}

ChannelPool::Lease::~Lease() {
  if (pool_ != nullptr) pool_->release(channel_);
}

ChannelPool::Lease ChannelPool::acquire() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (!free_.empty()) {
      FrameChannel* channel = free_.back();
      free_.pop_back();
      return Lease(this, channel);
    }
    if (channels_.size() < capacity_) {
      channels_.push_back(std::make_unique<FrameChannel>(endpoint_, config_));
      return Lease(this, channels_.back().get());
    }
    available_.wait(lock);
  }
}

void ChannelPool::release(FrameChannel* channel) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(channel);
  }
  available_.notify_one();
}

void ChannelPool::close_connections() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (FrameChannel* channel : free_) channel->close();
}

std::uint64_t ChannelPool::reconnects() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& channel : channels_) total += channel->reconnects();
  return total;
}

}  // namespace goodones::serve::wire
