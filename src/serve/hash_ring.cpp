#include "serve/hash_ring.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace goodones::serve {

namespace {

/// 64-bit avalanche finalizer (the MurmurHash3 fmix64 constants). Raw
/// FNV-1a's tail bytes barely diffuse — sequential keys ("SA_0", "SA_1",
/// ...) and sequential vnode replicas land clustered on the circle and
/// wreck balance; finalizing restores full avalanche while staying a pure,
/// platform-stable function.
std::uint64_t avalanche(std::uint64_t hash) noexcept {
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ull;
  hash ^= hash >> 33;
  return hash;
}

std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t hash = 1469598103934665603ull;  // 64-bit offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // 64-bit FNV prime
  }
  return hash;
}

std::uint64_t vnode_hash(std::string_view shard, std::size_t replica) {
  // Hash "name#i" without building the string: fold the replica index into
  // the shard-name hash the same FNV-1a way, then finalize.
  std::uint64_t hash = fnv1a(shard);
  hash ^= static_cast<unsigned char>('#');
  hash *= 1099511628211ull;
  std::uint64_t i = replica;
  do {
    hash ^= static_cast<unsigned char>('0' + i % 10);
    hash *= 1099511628211ull;
    i /= 10;
  } while (i != 0);
  return avalanche(hash);
}

}  // namespace

std::uint64_t stable_hash64(std::string_view bytes) noexcept {
  return avalanche(fnv1a(bytes));
}

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes == 0 ? 1 : vnodes) {}

void HashRing::add(const std::string& shard) {
  GO_EXPECTS(!shard.empty());
  if (contains(shard)) {
    throw common::PreconditionError("hash ring: shard already present: " + shard);
  }
  shards_.push_back(shard);
  insert_points(static_cast<std::uint32_t>(shards_.size() - 1));
}

bool HashRing::remove(const std::string& shard) {
  const auto it = std::find(shards_.begin(), shards_.end(), shard);
  if (it == shards_.end()) return false;
  shards_.erase(it);
  // Indices above the removed shard shifted down; rebuilding is O(total
  // vnodes · log) which is trivial at mesh scale and keeps Point indices
  // honest.
  rebuild_points();
  return true;
}

bool HashRing::contains(std::string_view shard) const noexcept {
  return std::find(shards_.begin(), shards_.end(), shard) != shards_.end();
}

std::vector<std::string> HashRing::shards() const {
  std::vector<std::string> sorted = shards_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

const std::string& HashRing::owner(std::string_view key) const {
  if (points_.empty()) {
    throw common::PreconditionError("hash ring: no shards on the ring");
  }
  const std::uint64_t hash = stable_hash64(key);
  auto it = std::upper_bound(
      points_.begin(), points_.end(), hash,
      [](std::uint64_t value, const Point& point) { return value < point.hash; });
  if (it == points_.end()) it = points_.begin();  // wrap past the top of the circle
  return shards_[it->shard];
}

void HashRing::sort_points() {
  // Tie-break equal hashes (astronomically unlikely but possible) on the
  // shard NAME, not the index — indices depend on insertion history and
  // would leak it into placement.
  std::sort(points_.begin(), points_.end(), [this](const Point& a, const Point& b) {
    return a.hash != b.hash ? a.hash < b.hash : shards_[a.shard] < shards_[b.shard];
  });
}

void HashRing::insert_points(std::uint32_t shard_index) {
  points_.reserve(points_.size() + vnodes_);
  for (std::size_t replica = 0; replica < vnodes_; ++replica) {
    points_.push_back(Point{vnode_hash(shards_[shard_index], replica), shard_index});
  }
  sort_points();
}

void HashRing::rebuild_points() {
  points_.clear();
  points_.reserve(shards_.size() * vnodes_);
  for (std::uint32_t i = 0; i < shards_.size(); ++i) {
    for (std::size_t replica = 0; replica < vnodes_; ++replica) {
      points_.push_back(Point{vnode_hash(shards_[i], replica), i});
    }
  }
  sort_points();
}

}  // namespace goodones::serve
