// The shared skeleton of every wire-protocol server in the mesh.
//
// serve::Daemon (a scoring shard) and serve::Router (the consistent-hash
// front end) speak the same framed protocol and need the same lifecycle:
// bind a listener on some transport, accept in a dedicated thread, serve
// each connection on its own handler thread (requests in order per
// connection, connections concurrent), contain protocol errors to typed
// Error frames, drain cleanly on stop. FrameServer owns exactly that and
// nothing else; subclasses implement dispatch() for their message
// semantics and hook on_started()/on_stopping() for their own workers
// (the router's health prober, for example).
//
// Error containment (inherited by every subclass): a malformed frame
// header (bad magic/version/length, mid-frame EOF) gets a typed Error
// frame and the connection is closed — after a corrupt header the stream
// offset cannot be trusted. An undecodable payload inside a well-framed
// message is the subclass's call (the convention is an Error frame with
// the connection kept open — frame boundaries are intact). The server
// itself never crashes on client input; the wire fuzz suite drives
// mutated frames at both transports to hold that line.
#pragma once

#include <atomic>
#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/socket.hpp"
#include "serve/wire.hpp"

namespace goodones::serve {

struct FrameServerConfig {
  /// Where to listen: unix:<path> (single-host IPC) or tcp:<host>:<port>
  /// (the mesh transport; port 0 = ephemeral, see FrameServer::endpoint()).
  common::Endpoint listen;
  /// Accept-loop poll granularity (how quickly stop() is observed).
  int accept_poll_ms = 100;
  /// Per-connection send timeout: a client that stops reading its replies
  /// gets its connection dropped after this long instead of wedging a
  /// handler thread (and therefore shutdown) forever. 0 = no timeout.
  int send_timeout_ms = 10000;
  /// Counter family ("serve.daemon", "serve.router"): the lifecycle
  /// counters — connections, frames, malformed_frames, error_frames,
  /// accept_failures — land under this prefix in core::metrics.
  std::string counter_prefix = "serve.daemon";
};

class FrameServer {
 public:
  explicit FrameServer(FrameServerConfig config);
  virtual ~FrameServer();

  FrameServer(const FrameServer&) = delete;
  FrameServer& operator=(const FrameServer&) = delete;

  /// Binds the listener and starts the accept loop. Throws
  /// common::SocketError when the endpoint cannot be bound. A FrameServer
  /// serves ONE lifecycle: start() after stop() is a precondition error.
  void start();

  /// Blocks until a Shutdown frame (or a concurrent stop()) ends the
  /// serving loop, then tears down: stops accepting, waits for in-flight
  /// requests to finish, joins every connection.
  void wait();

  /// Initiates and completes shutdown from the caller's thread. Safe to
  /// call repeatedly; must not be called from a connection handler (a
  /// Shutdown frame is the in-band way — it only *requests* the stop).
  void stop();

  bool running() const noexcept { return running_.load(); }

  /// The RESOLVED listen endpoint: bound with tcp port 0, this reports the
  /// kernel-assigned port once start() returns. Before start() it echoes
  /// the configured endpoint.
  const common::Endpoint& endpoint() const noexcept;

 protected:
  /// Serves one well-framed message; false = close the connection. Runs on
  /// the connection's handler thread; must contain its own exceptions
  /// except common::SocketError (a dead transport ends the connection).
  virtual bool dispatch(common::Socket& socket, const wire::Frame& frame) = 0;

  /// Called after the listener is bound and the accept loop is live.
  virtual void on_started() {}
  /// Called during stop(), after every connection handler has been joined
  /// and before running() flips false — join subclass workers here.
  virtual void on_stopping() {}

  /// Emits a typed Error frame, best-effort (the peer may be gone).
  void send_error(common::Socket& socket, wire::ErrorCode code,
                  const std::string& message) noexcept;

  /// Requests the serving loop to end (the in-band Shutdown path).
  void request_stop();

  const FrameServerConfig& server_config() const noexcept { return config_; }

 private:
  struct Connection {
    std::shared_ptr<common::Socket> socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void handle_connection(Connection& connection);
  void reap_finished_connections();
  std::string counter(const char* name) const;

  FrameServerConfig config_;
  std::unique_ptr<common::Listener> listener_;
  std::thread accept_thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};

  std::mutex state_mutex_;  // guards connections_ + stopped_ + wait/stop cv
  std::condition_variable stop_cv_;
  std::list<std::unique_ptr<Connection>> connections_;
  bool stopped_ = false;

  std::mutex teardown_mutex_;  // serializes stop() callers
  bool stopped_after_teardown_ = false;
};

}  // namespace goodones::serve
