// Persistent model registry for the serving path.
//
// The paper's end state is a deployed defense: detectors selectively
// trained on the less-vulnerable cluster score live telemetry, they do not
// retrain per run. The registry persists everything the scoring path needs
// as one versioned artifact in core::cache's artifact directory — the
// forecaster fleet (architecture + scaler + params), the detector feature
// scaler, the per-cluster detectors (kNN reference set / OCSVM support
// vectors / MAD-GAN nets), the entity -> vulnerability-cluster routing
// table and the domain spec — keyed by domain + config fingerprint +
// detector kind + bundle generation, so a trained BGMS or synthtel
// pipeline round-trips to disk and back without retraining.
//
// Generations are the adaptive serving loop's unit of publication: the
// offline pipeline emits generation 0, and every online refresh (the
// paper's Appendix-D iterative reassessment, driven by
// serve::AdaptiveController) publishes the rebuilt bundle as the next
// generation under the same base key. latest() resolves the newest
// generation so a restarted server resumes from the last published state.
// The controller's own profiling state persists alongside the bundles
// (save_profiler/load_profiler), keyed generation-agnostically.
//
// Every load failure (truncation, bad magic/version, shape mismatch, stale
// config fingerprint) throws common::SerializationError; a half-loaded
// model is never returned.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/domain.hpp"
#include "core/framework.hpp"
#include "data/scaler.hpp"
#include "detect/factory.hpp"
#include "predict/bilstm_forecaster.hpp"
#include "risk/online.hpp"

namespace goodones::serve {

/// Which vulnerability cluster an entity routes to (the paper's step-5
/// partition; indexes ServingModel::cluster_detectors).
enum class Cluster : std::uint8_t { kLessVulnerable = 0, kMoreVulnerable = 1 };

/// The complete scoring-path bundle, decoupled from the training pipeline:
/// load one of these and score live telemetry with no framework, no
/// entity generation and no retraining.
struct ServingModel {
  /// Cache key: domain (name or name-variant) + fingerprint of the
  /// training config. A model must never serve a config it was not
  /// trained under — load() enforces this.
  std::string domain_key;
  std::uint64_t fingerprint = 0;

  /// Bundle generation: 0 = the offline pipeline's output; each adaptive
  /// refresh publishes generation + 1. Scoring responses carry the serving
  /// generation so every verdict is attributable to exactly one bundle.
  std::uint64_t generation = 0;

  /// The domain's static semantics (telemetry schema, thresholds,
  /// severity, context channels) — everything feature assembly and risk
  /// weighting need at scoring time.
  core::DomainSpec spec;

  detect::DetectorKind detector_kind = detect::DetectorKind::kKnn;

  /// Monitored entities in training order; requests address entities by
  /// these names.
  std::vector<std::string> entity_names;
  /// Per-entity vulnerability cluster (entity order).
  std::vector<Cluster> entity_cluster;

  /// The global detector feature scaler the pipeline fit across entities.
  data::MinMaxScaler detector_scaler;

  /// Personalized forecasters, entity order (each carries its own scaler).
  std::vector<predict::BiLstmForecaster> forecasters;

  /// One detector per cluster, indexed by Cluster. Both are trained on
  /// their own cluster's victims, so serving can score an entity with its
  /// cluster's detector (and report the paper's preferred less-vulnerable
  /// detector for entities in the more-vulnerable group).
  std::array<std::unique_ptr<detect::AnomalyDetector>, 2> cluster_detectors;

  /// Index of a named entity; throws common::PreconditionError if unknown.
  std::size_t entity_index(std::string_view name) const;

  const detect::AnomalyDetector& detector_for(std::size_t entity) const;
};

/// Trains (or reuses) everything in `framework` and assembles the serving
/// bundle: forecaster fleet, per-cluster detectors of `kind`, routing table,
/// scaler and spec. Heavy stages already computed on the framework are
/// reused, not recomputed. Publishes as generation 0.
ServingModel build_serving_model(core::RiskProfilingFramework& framework,
                                 detect::DetectorKind kind);

/// Rebuilds the bundle for an explicitly-supplied vulnerability partition —
/// the adaptive loop's refresh path. The partition is canonicalized through
/// framework.rebuild_routing (training-identical assignment code) and both
/// cluster detectors are retrained on their new victim sets through the
/// train_detector seam; the result is stamped with `generation`.
ServingModel build_serving_model(core::RiskProfilingFramework& framework,
                                 detect::DetectorKind kind,
                                 const core::VulnerabilityClusters& partition,
                                 std::uint64_t generation);

/// Deep copy via an in-memory serialization round-trip (detectors and
/// forecasters only expose stream persistence). The clone scores
/// bitwise-identically — this is what routing-only refreshes build on.
ServingModel clone_serving_model(const ServingModel& model);

/// A mesh shard's bundle: the model restricted to `entities` (a subset of
/// entity_names, kept in TRAINING order regardless of the order given).
/// Forecasters, cluster routing and detectors carry over untouched, so a
/// slice scores its entities bitwise-identically to the full bundle — only
/// ServingModel::entity_index values are slice-local. The slice's
/// domain_key gains a deterministic "#slice-<hash of member set>" suffix so
/// slices and the full bundle never collide in a shared ModelRegistry.
/// Throws common::PreconditionError on an empty, unknown or duplicate name.
ServingModel slice_serving_model(const ServingModel& model,
                                 const std::vector<std::string>& entities);

/// Addresses one persisted serving bundle.
struct RegistryKey {
  std::string domain_key;
  std::uint64_t fingerprint = 0;
  detect::DetectorKind detector_kind = detect::DetectorKind::kKnn;
  std::uint64_t generation = 0;
};

/// Derives the registry key a framework's serving bundle persists under
/// (generation 0; adaptive refreshes bump RegistryKey::generation).
RegistryKey registry_key(const core::RiskProfilingFramework& framework,
                         detect::DetectorKind kind);

/// One promotion-lineage record: what happened to a candidate generation
/// and which primary it was measured against. The lineage file is the
/// audit trail that keeps every served verdict bitwise-replayable — it
/// names, for any point in time, exactly which persisted generation was
/// primary and how the transitions between generations were decided.
enum class LineageAction : std::uint32_t {
  kInstalled = 0,   ///< entered as canary candidate
  kPromoted = 1,    ///< became the primary
  kRolledBack = 2,  ///< dropped; the primary kept serving
};

struct LineageEvent {
  std::uint64_t generation = 0;          ///< the candidate generation
  std::uint64_t primary_generation = 0;  ///< primary at the time of the event
  LineageAction action = LineageAction::kInstalled;
  std::uint64_t mirrored_windows = 0;    ///< canary evidence behind the event
};

class ModelRegistry {
 public:
  /// `root` defaults to <artifacts>/models (see core::artifacts_dir()).
  /// Opening a registry sweeps STALE orphaned "*.bin.tmp.*" files left
  /// behind by writers that crashed between temp-write and atomic rename
  /// (an age threshold protects a peer's save that is in flight right
  /// now); live artifacts are never touched.
  explicit ModelRegistry();
  explicit ModelRegistry(std::filesystem::path root);

  const std::filesystem::path& root() const noexcept { return root_; }

  /// File a key maps to (exists or not).
  std::filesystem::path path_for(const RegistryKey& key) const;

  bool contains(const RegistryKey& key) const;

  /// Persists the bundle under its own key (including its generation);
  /// atomic (write to temp file, rename into place) so readers never
  /// observe a half-written artifact.
  void save(const ServingModel& model) const;

  /// Loads the bundle for `key`. Throws common::SerializationError when the
  /// artifact is missing, truncated, has a bad magic/version, carries
  /// mismatched shapes, or its stored fingerprint disagrees with the key
  /// (stale artifact).
  ServingModel load(const RegistryKey& key) const;

  /// Newest published generation for `key`'s (domain, fingerprint, kind) —
  /// the key's own generation field is ignored. nullopt when no generation
  /// of the bundle has been published.
  std::optional<RegistryKey> latest(const RegistryKey& key) const;

  /// All artifact files currently in the registry, sorted by name.
  std::vector<std::filesystem::path> list() const;

  // --- adaptive-controller state --------------------------------------------

  /// Persists the online profiler's state for `key` (generation-agnostic:
  /// profiling evidence spans bundle generations). Atomic like save().
  void save_profiler(const RegistryKey& key, const risk::OnlineRiskProfiler& profiler) const;

  /// True when profiler state has been persisted for `key`.
  bool contains_profiler(const RegistryKey& key) const;

  /// Restores profiler state saved under `key` into `profiler` (which must
  /// track the same victim roster). Throws common::SerializationError on a
  /// missing/corrupt artifact or roster mismatch.
  void load_profiler(const RegistryKey& key, risk::OnlineRiskProfiler& profiler) const;

  // --- promotion lineage ----------------------------------------------------

  /// Appends one lineage event for `key`'s (domain, fingerprint, kind) —
  /// generation-agnostic like the profiler state, since lineage spans
  /// generations by definition. Atomic rewrite of the lineage artifact.
  void append_lineage(const RegistryKey& key, const LineageEvent& event) const;

  /// True when lineage has been recorded for `key`.
  bool contains_lineage(const RegistryKey& key) const;

  /// All lineage events for `key` in append order. Throws
  /// common::SerializationError on a missing or corrupt artifact.
  std::vector<LineageEvent> load_lineage(const RegistryKey& key) const;

 private:
  std::filesystem::path profiler_path_for(const RegistryKey& key) const;
  std::filesystem::path lineage_path_for(const RegistryKey& key) const;
  void sweep_orphaned_tmp_files() const;

  std::filesystem::path root_;
};

const char* to_string(Cluster cluster) noexcept;

}  // namespace goodones::serve
