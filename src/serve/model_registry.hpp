// Persistent model registry for the serving path.
//
// The paper's end state is a deployed defense: detectors selectively
// trained on the less-vulnerable cluster score live telemetry, they do not
// retrain per run. The registry persists everything the scoring path needs
// as one versioned artifact in core::cache's artifact directory — the
// forecaster fleet (architecture + scaler + params), the detector feature
// scaler, the per-cluster detectors (kNN reference set / OCSVM support
// vectors / MAD-GAN nets), the entity -> vulnerability-cluster routing
// table and the domain spec — keyed by domain + config fingerprint +
// detector kind, so a trained BGMS or synthtel pipeline round-trips to
// disk and back without retraining.
//
// Every load failure (truncation, bad magic/version, shape mismatch, stale
// config fingerprint) throws common::SerializationError; a half-loaded
// model is never returned.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/domain.hpp"
#include "core/framework.hpp"
#include "data/scaler.hpp"
#include "detect/factory.hpp"
#include "predict/bilstm_forecaster.hpp"

namespace goodones::serve {

/// Which vulnerability cluster an entity routes to (the paper's step-5
/// partition; indexes ServingModel::cluster_detectors).
enum class Cluster : std::uint8_t { kLessVulnerable = 0, kMoreVulnerable = 1 };

/// The complete scoring-path bundle, decoupled from the training pipeline:
/// load one of these and score live telemetry with no framework, no
/// entity generation and no retraining.
struct ServingModel {
  /// Cache key: domain (name or name-variant) + fingerprint of the
  /// training config. A model must never serve a config it was not
  /// trained under — load() enforces this.
  std::string domain_key;
  std::uint64_t fingerprint = 0;

  /// The domain's static semantics (telemetry schema, thresholds,
  /// severity, context channels) — everything feature assembly and risk
  /// weighting need at scoring time.
  core::DomainSpec spec;

  detect::DetectorKind detector_kind = detect::DetectorKind::kKnn;

  /// Monitored entities in training order; requests address entities by
  /// these names.
  std::vector<std::string> entity_names;
  /// Per-entity vulnerability cluster (entity order).
  std::vector<Cluster> entity_cluster;

  /// The global detector feature scaler the pipeline fit across entities.
  data::MinMaxScaler detector_scaler;

  /// Personalized forecasters, entity order (each carries its own scaler).
  std::vector<predict::BiLstmForecaster> forecasters;

  /// One detector per cluster, indexed by Cluster. Both are trained on
  /// their own cluster's victims, so serving can score an entity with its
  /// cluster's detector (and report the paper's preferred less-vulnerable
  /// detector for entities in the more-vulnerable group).
  std::array<std::unique_ptr<detect::AnomalyDetector>, 2> cluster_detectors;

  /// Index of a named entity; throws common::PreconditionError if unknown.
  std::size_t entity_index(std::string_view name) const;

  const detect::AnomalyDetector& detector_for(std::size_t entity) const;
};

/// Trains (or reuses) everything in `framework` and assembles the serving
/// bundle: forecaster fleet, per-cluster detectors of `kind`, routing table,
/// scaler and spec. Heavy stages already computed on the framework are
/// reused, not recomputed.
ServingModel build_serving_model(core::RiskProfilingFramework& framework,
                                 detect::DetectorKind kind);

/// Addresses one persisted serving bundle.
struct RegistryKey {
  std::string domain_key;
  std::uint64_t fingerprint = 0;
  detect::DetectorKind detector_kind = detect::DetectorKind::kKnn;
};

/// Derives the registry key a framework's serving bundle persists under.
RegistryKey registry_key(const core::RiskProfilingFramework& framework,
                         detect::DetectorKind kind);

class ModelRegistry {
 public:
  /// `root` defaults to <artifacts>/models (see core::artifacts_dir()).
  explicit ModelRegistry();
  explicit ModelRegistry(std::filesystem::path root);

  const std::filesystem::path& root() const noexcept { return root_; }

  /// File a key maps to (exists or not).
  std::filesystem::path path_for(const RegistryKey& key) const;

  bool contains(const RegistryKey& key) const;

  /// Persists the bundle under its own key; atomic (write to temp file,
  /// rename into place) so readers never observe a half-written artifact.
  void save(const ServingModel& model) const;

  /// Loads the bundle for `key`. Throws common::SerializationError when the
  /// artifact is missing, truncated, has a bad magic/version, carries
  /// mismatched shapes, or its stored fingerprint disagrees with the key
  /// (stale artifact).
  ServingModel load(const RegistryKey& key) const;

  /// All artifact files currently in the registry, sorted by name.
  std::vector<std::filesystem::path> list() const;

 private:
  std::filesystem::path root_;
};

const char* to_string(Cluster cluster) noexcept;

}  // namespace goodones::serve
