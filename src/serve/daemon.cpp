#include "serve/daemon.hpp"

#include <exception>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/metrics.hpp"

namespace goodones::serve {

namespace {

ModelRegistry make_registry(const std::filesystem::path& root) {
  return root.empty() ? ModelRegistry() : ModelRegistry(root);
}

/// The daemon's provenance contract: every generation a verdict can name
/// must be replayable, so the initial bundle is persisted before serving.
ServingModel persist_initial(const ModelRegistry& registry, ServingModel model) {
  RegistryKey key;
  key.domain_key = model.domain_key;
  key.fingerprint = model.fingerprint;
  key.detector_kind = model.detector_kind;
  key.generation = model.generation;
  if (!registry.contains(key)) registry.save(model);
  return model;
}

FrameServerConfig server_config_of(const DaemonConfig& config) {
  FrameServerConfig server;
  server.listen = config.listen;
  server.accept_poll_ms = config.accept_poll_ms;
  server.send_timeout_ms = config.send_timeout_ms;
  server.counter_prefix = "serve.daemon";
  return server;
}

}  // namespace

Daemon::Daemon(ServingModel model, DaemonConfig config,
               AdaptiveController::BundleRebuilder rebuilder)
    : FrameServer(server_config_of(config)),
      config_(std::move(config)),
      registry_(make_registry(config_.registry_root)),
      service_(persist_initial(registry_, std::move(model)), config_.scoring) {
  if (config_.adaptive_enabled) {
    controller_.emplace(service_, config_.adaptive, std::move(rebuilder), &registry_);
  }
}

Daemon::~Daemon() { stop(); }

void Daemon::on_started() {
  common::log_info("daemon listening on ", endpoint().to_string(), " (generation ",
                   service_.generation(), ")");
}

void Daemon::on_stopping() {
  // Runs after every connection handler joined: no more observations can
  // arrive, so the refresh worker can settle its queue and park.
  if (controller_) controller_->drain();
}

bool Daemon::dispatch(common::Socket& socket, const wire::Frame& frame) {
  switch (frame.type) {
    case wire::MessageType::kScore: {
      ScoreRequest request;
      try {
        request = wire::decode_score_request(frame.payload);
      } catch (const common::SerializationError& error) {
        // Frame boundaries are intact — answer and keep the connection.
        core::counters().add("serve.daemon.malformed_frames", 1);
        send_error(socket, wire::ErrorCode::kMalformedFrame, error.what());
        return true;
      }
      try {
        const ScoreResponse response = service_.score(request);
        wire::send_frame(socket, wire::MessageType::kScoreReply,
                         wire::encode_score_response(response));
        core::counters().add("serve.daemon.scores", 1);
        core::counters().add("serve.daemon.windows_scored", request.windows.size());
      } catch (const common::SocketError&) {
        throw;  // the reply itself failed mid-write; the stream is dead
      } catch (const common::PreconditionError& error) {
        send_error(socket, wire::ErrorCode::kBadRequest, error.what());
      } catch (const std::exception& error) {
        // Any other server-side failure is what kInternal exists for; the
        // client must get a typed reply, not a silent disconnect.
        send_error(socket, wire::ErrorCode::kInternal, error.what());
      }
      return true;
    }
    case wire::MessageType::kStats: {
      wire::StatsSnapshot stats = core::counters().snapshot();
      stats.emplace_back("serve.daemon.generation", service_.generation());
      stats.emplace_back("serve.daemon.adaptive_enabled", controller_ ? 1 : 0);
      wire::send_frame(socket, wire::MessageType::kStatsReply, wire::encode_stats(stats));
      return true;
    }
    case wire::MessageType::kHealth: {
      // Deliberately cheap: no counter snapshot, no allocation beyond the
      // reply — this is what a router polls every few hundred ms per shard.
      wire::HealthReply reply;
      reply.draining = false;
      reply.generation = service_.generation();
      wire::send_frame(socket, wire::MessageType::kHealthReply,
                       wire::encode_health_reply(reply));
      return true;
    }
    case wire::MessageType::kRefresh: {
      wire::RefreshReply reply;
      if (controller_) {
        try {
          // Let any in-flight automatic refresh settle first so the reply
          // is deterministic about what is being served afterwards.
          controller_->drain();
          reply.refreshed = controller_->maybe_refresh();
        } catch (const std::exception& error) {
          core::counters().add("serve.adaptive.refresh_failures", 1);
          send_error(socket, wire::ErrorCode::kInternal, error.what());
          return true;
        }
      }
      reply.generation = service_.generation();
      wire::send_frame(socket, wire::MessageType::kRefreshReply,
                       wire::encode_refresh_reply(reply));
      return true;
    }
    case wire::MessageType::kShutdown: {
      wire::send_frame(socket, wire::MessageType::kShutdownReply, {});
      request_stop();
      return false;
    }
    default:
      // Reply-typed frames (and the router-only Drain) arriving at a
      // shard: a confused peer, not a corrupt stream — answer and keep
      // the connection.
      send_error(socket, wire::ErrorCode::kBadRequest,
                 std::string("unexpected message type on the server side: ") +
                     wire::to_string(frame.type));
      return true;
  }
}

// --- client ------------------------------------------------------------------

namespace {

/// The pre-mesh constructor's policy: dial once, never reconnect.
DaemonClientConfig fail_fast_config() {
  DaemonClientConfig config;
  config.channel.reconnect = false;
  config.channel.backoff.max_attempts = 1;
  return config;
}

}  // namespace

DaemonClient::DaemonClient(common::Endpoint endpoint, DaemonClientConfig config)
    : endpoint_(std::move(endpoint)),
      pool_(endpoint_, config.channel, config.pool_size) {
  // Fail fast on a dead endpoint instead of on the first request: dial one
  // channel now (it returns to the pool immediately).
  pool_.acquire()->ensure_connected();
}

DaemonClient::DaemonClient(const std::filesystem::path& socket_path)
    : DaemonClient(common::Endpoint::unix_socket(socket_path), fail_fast_config()) {}

wire::Frame DaemonClient::roundtrip(wire::MessageType type, const std::string& payload,
                                    wire::MessageType expected_reply, bool retryable) {
  wire::ChannelPool::Lease channel = pool_.acquire();
  wire::Frame reply = channel->roundtrip(type, payload, retryable);
  if (reply.type == wire::MessageType::kError) {
    const wire::ErrorFrame error = wire::decode_error(reply.payload);
    const std::string what = std::string("daemon error (") + wire::to_string(error.code) +
                             "): " + error.message;
    switch (error.code) {
      case wire::ErrorCode::kBadRequest:
        throw common::PreconditionError(what);
      case wire::ErrorCode::kMalformedFrame:
      case wire::ErrorCode::kUnsupportedVersion:
        throw common::SerializationError(what);
      case wire::ErrorCode::kInternal:
      case wire::ErrorCode::kUnavailable:
        break;
    }
    throw std::runtime_error(what);
  }
  if (reply.type != expected_reply) {
    throw common::SerializationError(
        std::string("wire: expected ") + wire::to_string(expected_reply) + ", got " +
        wire::to_string(reply.type));
  }
  return reply;
}

ScoreResponse DaemonClient::score(const ScoreRequest& request) {
  const wire::Frame reply =
      roundtrip(wire::MessageType::kScore, wire::encode_score_request(request),
                wire::MessageType::kScoreReply, /*retryable=*/true);
  return wire::decode_score_response(reply.payload);
}

wire::StatsSnapshot DaemonClient::stats() {
  const wire::Frame reply = roundtrip(wire::MessageType::kStats, {},
                                      wire::MessageType::kStatsReply, /*retryable=*/true);
  return wire::decode_stats(reply.payload);
}

wire::HealthReply DaemonClient::health() {
  const wire::Frame reply = roundtrip(wire::MessageType::kHealth, {},
                                      wire::MessageType::kHealthReply, /*retryable=*/true);
  return wire::decode_health_reply(reply.payload);
}

wire::RefreshReply DaemonClient::refresh() {
  const wire::Frame reply =
      roundtrip(wire::MessageType::kRefresh, {}, wire::MessageType::kRefreshReply,
                /*retryable=*/true);
  return wire::decode_refresh_reply(reply.payload);
}

wire::DrainReply DaemonClient::drain(const std::string& shard) {
  wire::DrainRequest request;
  request.shard = shard;
  const wire::Frame reply =
      roundtrip(wire::MessageType::kDrain, wire::encode_drain_request(request),
                wire::MessageType::kDrainReply, /*retryable=*/false);
  return wire::decode_drain_reply(reply.payload);
}

void DaemonClient::shutdown() {
  (void)roundtrip(wire::MessageType::kShutdown, {}, wire::MessageType::kShutdownReply,
                  /*retryable=*/false);
}

}  // namespace goodones::serve
