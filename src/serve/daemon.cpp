#include "serve/daemon.hpp"

#include <chrono>
#include <exception>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/metrics.hpp"

namespace goodones::serve {

namespace {

ModelRegistry make_registry(const std::filesystem::path& root) {
  return root.empty() ? ModelRegistry() : ModelRegistry(root);
}

/// The daemon's provenance contract: every generation a verdict can name
/// must be replayable, so the initial bundle is persisted before serving.
ServingModel persist_initial(const ModelRegistry& registry, ServingModel model) {
  RegistryKey key;
  key.domain_key = model.domain_key;
  key.fingerprint = model.fingerprint;
  key.detector_kind = model.detector_kind;
  key.generation = model.generation;
  if (!registry.contains(key)) registry.save(model);
  return model;
}

}  // namespace

Daemon::Daemon(ServingModel model, DaemonConfig config,
               AdaptiveController::BundleRebuilder rebuilder)
    : config_(std::move(config)),
      registry_(make_registry(config_.registry_root)),
      service_(persist_initial(registry_, std::move(model)), config_.scoring) {
  GO_EXPECTS(!config_.socket_path.empty());
  GO_EXPECTS(config_.accept_poll_ms > 0);
  if (config_.adaptive_enabled) {
    controller_.emplace(service_, config_.adaptive, std::move(rebuilder), &registry_);
  }
}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  GO_EXPECTS(!running_.load());
  GO_EXPECTS(!accept_thread_.joinable());
  {
    // A Daemon serves one lifecycle: restarting after stop() would leave
    // the teardown latch set and every later stop() a no-op.
    const std::lock_guard<std::mutex> teardown(teardown_mutex_);
    GO_EXPECTS(!stopped_after_teardown_);
  }
  listener_.emplace(config_.socket_path);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  common::log_info("daemon listening on ", config_.socket_path.string(),
                   " (generation ", service_.generation(), ")");
}

bool Daemon::running() const noexcept { return running_.load(); }

void Daemon::request_stop() {
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    stop_requested_.store(true);
  }
  stop_cv_.notify_all();
}

void Daemon::wait() {
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    stop_cv_.wait(lock, [this] { return stop_requested_.load() || stopped_; });
  }
  stop();
}

void Daemon::stop() {
  request_stop();
  // Serialize teardown (wait() and an explicit stop() may race).
  const std::lock_guard<std::mutex> teardown(teardown_mutex_);
  if (stopped_after_teardown_) return;
  stopped_after_teardown_ = true;

  if (accept_thread_.joinable()) accept_thread_.join();
  if (listener_) listener_->close();
  // Drain: half-close each live connection's read side. A handler busy
  // scoring finishes and flushes its in-flight response (writes still
  // flow), then observes EOF on its next read and exits.
  // After the accept thread joined, nothing mutates connections_.
  for (auto& connection : connections_) connection->socket->shutdown_read();
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  connections_.clear();
  if (controller_) controller_->drain();
  running_.store(false);
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    stopped_ = true;
  }
  stop_cv_.notify_all();
  common::log_info("daemon stopped (", config_.socket_path.string(), ")");
}

void Daemon::accept_loop() {
  while (!stop_requested_.load()) {
    common::Socket socket;
    try {
      socket = listener_->accept(config_.accept_poll_ms);
      if (socket.valid() && config_.send_timeout_ms > 0) {
        socket.set_send_timeout_ms(config_.send_timeout_ms);
      }
    } catch (const std::exception& error) {
      // Transient accept failures (fd exhaustion above all) must never
      // escape the thread (std::terminate); back off and keep serving the
      // connections that already exist.
      core::counters().add("serve.daemon.accept_failures", 1);
      common::log_warn("daemon accept failed (backing off): ", error.what());
      std::this_thread::sleep_for(std::chrono::milliseconds(config_.accept_poll_ms));
      reap_finished_connections();
      continue;
    }
    reap_finished_connections();
    if (!socket.valid()) continue;
    core::counters().add("serve.daemon.connections", 1);
    auto connection = std::make_unique<Connection>();
    connection->socket = std::make_shared<common::Socket>(std::move(socket));
    Connection& ref = *connection;
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      connections_.push_back(std::move(connection));
    }
    ref.thread = std::thread([this, &ref] { handle_connection(ref); });
  }
}

void Daemon::reap_finished_connections() {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Daemon::handle_connection(Connection& connection) {
  common::Socket& socket = *connection.socket;
  try {
    for (;;) {
      std::optional<wire::Frame> frame;
      try {
        frame = wire::recv_frame(socket);
      } catch (const wire::ProtocolVersionError& error) {
        core::counters().add("serve.daemon.malformed_frames", 1);
        send_error(socket, wire::ErrorCode::kUnsupportedVersion, error.what());
        break;  // the peer speaks a different protocol revision
      } catch (const common::SerializationError& error) {
        core::counters().add("serve.daemon.malformed_frames", 1);
        send_error(socket, wire::ErrorCode::kMalformedFrame, error.what());
        break;  // after a corrupt header the stream offset is untrustworthy
      }
      if (!frame) break;  // clean EOF between frames
      core::counters().add("serve.daemon.frames", 1);
      if (!dispatch(socket, *frame)) break;
    }
  } catch (const common::SocketError& error) {
    common::log_debug("daemon connection dropped: ", error.what());
  } catch (const std::exception& error) {
    common::log_warn("daemon connection handler failed: ", error.what());
  }
  // The socket is NOT closed here: stop() may call shutdown_read() on it
  // concurrently, and Socket::fd_ is unsynchronized. The fd closes when the
  // connection is reaped (next accept tick) or at teardown — both after
  // this thread is joined.
  connection.done.store(true);
}

bool Daemon::dispatch(common::Socket& socket, const wire::Frame& frame) {
  switch (frame.type) {
    case wire::MessageType::kScore: {
      ScoreRequest request;
      try {
        request = wire::decode_score_request(frame.payload);
      } catch (const common::SerializationError& error) {
        // Frame boundaries are intact — answer and keep the connection.
        core::counters().add("serve.daemon.malformed_frames", 1);
        send_error(socket, wire::ErrorCode::kMalformedFrame, error.what());
        return true;
      }
      try {
        const ScoreResponse response = service_.score(request);
        wire::send_frame(socket, wire::MessageType::kScoreReply,
                         wire::encode_score_response(response));
        core::counters().add("serve.daemon.scores", 1);
        core::counters().add("serve.daemon.windows_scored", request.windows.size());
      } catch (const common::SocketError&) {
        throw;  // the reply itself failed mid-write; the stream is dead
      } catch (const common::PreconditionError& error) {
        send_error(socket, wire::ErrorCode::kBadRequest, error.what());
      } catch (const std::exception& error) {
        // Any other server-side failure is what kInternal exists for; the
        // client must get a typed reply, not a silent disconnect.
        send_error(socket, wire::ErrorCode::kInternal, error.what());
      }
      return true;
    }
    case wire::MessageType::kStats: {
      wire::StatsSnapshot stats = core::counters().snapshot();
      stats.emplace_back("serve.daemon.generation", service_.generation());
      stats.emplace_back("serve.daemon.adaptive_enabled", controller_ ? 1 : 0);
      wire::send_frame(socket, wire::MessageType::kStatsReply, wire::encode_stats(stats));
      return true;
    }
    case wire::MessageType::kRefresh: {
      wire::RefreshReply reply;
      if (controller_) {
        try {
          // Let any in-flight automatic refresh settle first so the reply
          // is deterministic about what is being served afterwards.
          controller_->drain();
          reply.refreshed = controller_->maybe_refresh();
        } catch (const std::exception& error) {
          core::counters().add("serve.adaptive.refresh_failures", 1);
          send_error(socket, wire::ErrorCode::kInternal, error.what());
          return true;
        }
      }
      reply.generation = service_.generation();
      wire::send_frame(socket, wire::MessageType::kRefreshReply,
                       wire::encode_refresh_reply(reply));
      return true;
    }
    case wire::MessageType::kShutdown: {
      wire::send_frame(socket, wire::MessageType::kShutdownReply, {});
      request_stop();
      return false;
    }
    default:
      // Reply-typed frames arriving at the server: a confused peer, not a
      // corrupt stream — answer and keep the connection.
      send_error(socket, wire::ErrorCode::kBadRequest,
                 std::string("unexpected message type on the server side: ") +
                     wire::to_string(frame.type));
      return true;
  }
}

void Daemon::send_error(common::Socket& socket, wire::ErrorCode code,
                        const std::string& message) noexcept {
  core::counters().add("serve.daemon.error_frames", 1);
  try {
    wire::ErrorFrame error;
    error.code = code;
    error.message = message;
    wire::send_frame(socket, wire::MessageType::kError, wire::encode_error(error));
  } catch (const std::exception&) {
    // Best-effort: the peer may already be gone.
  }
}

// --- client ------------------------------------------------------------------

DaemonClient::DaemonClient(const std::filesystem::path& socket_path)
    : socket_(common::connect_unix(socket_path)) {}

wire::Frame DaemonClient::roundtrip(wire::MessageType type, const std::string& payload,
                                    wire::MessageType expected_reply) {
  wire::send_frame(socket_, type, payload);
  std::optional<wire::Frame> reply = wire::recv_frame(socket_);
  if (!reply) {
    throw common::SocketError("daemon closed the connection before replying");
  }
  if (reply->type == wire::MessageType::kError) {
    const wire::ErrorFrame error = wire::decode_error(reply->payload);
    const std::string what = std::string("daemon error (") + wire::to_string(error.code) +
                             "): " + error.message;
    switch (error.code) {
      case wire::ErrorCode::kBadRequest:
        throw common::PreconditionError(what);
      case wire::ErrorCode::kMalformedFrame:
      case wire::ErrorCode::kUnsupportedVersion:
        throw common::SerializationError(what);
      case wire::ErrorCode::kInternal:
        break;
    }
    throw std::runtime_error(what);
  }
  if (reply->type != expected_reply) {
    throw common::SerializationError(
        std::string("wire: expected ") + wire::to_string(expected_reply) + ", got " +
        wire::to_string(reply->type));
  }
  return std::move(*reply);
}

ScoreResponse DaemonClient::score(const ScoreRequest& request) {
  const wire::Frame reply = roundtrip(wire::MessageType::kScore,
                                      wire::encode_score_request(request),
                                      wire::MessageType::kScoreReply);
  return wire::decode_score_response(reply.payload);
}

wire::StatsSnapshot DaemonClient::stats() {
  const wire::Frame reply =
      roundtrip(wire::MessageType::kStats, {}, wire::MessageType::kStatsReply);
  return wire::decode_stats(reply.payload);
}

wire::RefreshReply DaemonClient::refresh() {
  const wire::Frame reply =
      roundtrip(wire::MessageType::kRefresh, {}, wire::MessageType::kRefreshReply);
  return wire::decode_refresh_reply(reply.payload);
}

void DaemonClient::shutdown() {
  (void)roundtrip(wire::MessageType::kShutdown, {}, wire::MessageType::kShutdownReply);
}

}  // namespace goodones::serve
