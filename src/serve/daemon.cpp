#include "serve/daemon.hpp"

#include <cmath>
#include <exception>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/metrics.hpp"

namespace goodones::serve {

namespace {

ModelRegistry make_registry(const std::filesystem::path& root) {
  return root.empty() ? ModelRegistry() : ModelRegistry(root);
}

/// The daemon's provenance contract: every generation a verdict can name
/// must be replayable, so the initial bundle is persisted before serving.
ServingModel persist_initial(const ModelRegistry& registry, ServingModel model) {
  RegistryKey key;
  key.domain_key = model.domain_key;
  key.fingerprint = model.fingerprint;
  key.detector_kind = model.detector_kind;
  key.generation = model.generation;
  if (!registry.contains(key)) registry.save(model);
  return model;
}

FrameServerConfig server_config_of(const DaemonConfig& config) {
  FrameServerConfig server;
  server.listen = config.listen;
  server.accept_poll_ms = config.accept_poll_ms;
  server.send_timeout_ms = config.send_timeout_ms;
  server.counter_prefix = "serve.daemon";
  return server;
}

data::ColumnStoreConfig store_config_of(const DaemonConfig& config) {
  data::ColumnStoreConfig store;
  store.root = config.store_root;
  store.segment_capacity = config.store_segment_capacity;
  store.mmap_reads = config.store_mmap;
  return store;
}

}  // namespace

Daemon::Daemon(ServingModel model, DaemonConfig config,
               AdaptiveController::BundleRebuilder rebuilder)
    : FrameServer(server_config_of(config)),
      config_(std::move(config)),
      registry_(make_registry(config_.registry_root)),
      service_(persist_initial(registry_, std::move(model)), config_.scoring),
      store_(store_config_of(config_), service_.model()->spec.num_channels) {
  const std::shared_ptr<const ServingModel> bundle = service_.model();
  roster_.insert(bundle->entity_names.begin(), bundle->entity_names.end());
  // Lineage tap: every canary transition (automatic or manual) is recorded
  // in the registry before the daemon answers anything else about it, so
  // which generation was primary when survives restarts. A lineage write
  // failure never breaks serving — it is counted and logged.
  service_.set_canary_observer([this](const CanaryEvent& event) {
    LineageEvent record;
    record.generation = event.candidate_generation;
    record.primary_generation = event.primary_generation;
    record.action = event.action == CanaryEvent::Action::kInstalled
                        ? LineageAction::kInstalled
                        : (event.action == CanaryEvent::Action::kPromoted
                               ? LineageAction::kPromoted
                               : LineageAction::kRolledBack);
    record.mirrored_windows = event.mirrored_windows;
    try {
      const std::shared_ptr<const ServingModel> model = service_.model();
      RegistryKey key;
      key.domain_key = model->domain_key;
      key.fingerprint = model->fingerprint;
      key.detector_kind = model->detector_kind;
      registry_.append_lineage(key, record);
    } catch (const std::exception& error) {
      core::counters().add("serve.canary.lineage_failures", 1);
      common::log_warn("canary lineage write failed: ", error.what());
    }
    common::log_info("canary ",
                     record.action == LineageAction::kInstalled
                         ? "candidate installed: generation "
                         : (record.action == LineageAction::kPromoted
                                ? "promoted: generation "
                                : "rolled back: generation "),
                     event.candidate_generation, " (primary ",
                     event.primary_generation, ", ", event.mirrored_windows,
                     " mirrored windows, ", event.automatic ? "policy" : "manual",
                     ")");
  });
  if (config_.adaptive_enabled) {
    controller_.emplace(service_, config_.adaptive, std::move(rebuilder), &registry_);
  }
}

Daemon::~Daemon() {
  stop();
  service_.set_canary_observer(nullptr);
  // Persist partial trailing segments so a restarted daemon resumes the
  // exact tick history (memory-only stores make this a no-op).
  try {
    store_.flush();
  } catch (const std::exception& error) {
    common::log_error("store flush on shutdown failed: ", error.what());
  }
}

void Daemon::on_started() {
  common::log_info("daemon listening on ", endpoint().to_string(), " (generation ",
                   service_.generation(), ")");
}

void Daemon::on_stopping() {
  // Runs after every connection handler joined: no more observations can
  // arrive, so the refresh worker can settle its queue and park.
  if (controller_) controller_->drain();
}

bool Daemon::dispatch(common::Socket& socket, const wire::Frame& frame) {
  switch (frame.type) {
    case wire::MessageType::kScore: {
      ScoreRequest request;
      try {
        request = wire::decode_score_request(frame.payload);
      } catch (const common::SerializationError& error) {
        // Frame boundaries are intact — answer and keep the connection.
        core::counters().add("serve.daemon.malformed_frames", 1);
        send_error(socket, wire::ErrorCode::kMalformedFrame, error.what());
        return true;
      }
      try {
        const ScoreResponse response = service_.score(request);
        wire::send_frame(socket, wire::MessageType::kScoreReply,
                         wire::encode_score_response(response));
        core::counters().add("serve.daemon.scores", 1);
        core::counters().add("serve.daemon.windows_scored", request.windows.size());
      } catch (const common::SocketError&) {
        throw;  // the reply itself failed mid-write; the stream is dead
      } catch (const common::PreconditionError& error) {
        send_error(socket, wire::ErrorCode::kBadRequest, error.what());
      } catch (const std::exception& error) {
        // Any other server-side failure is what kInternal exists for; the
        // client must get a typed reply, not a silent disconnect.
        send_error(socket, wire::ErrorCode::kInternal, error.what());
      }
      return true;
    }
    case wire::MessageType::kIngest: {
      wire::IngestRequest request;
      try {
        request = wire::decode_ingest_request(frame.payload);
      } catch (const common::SerializationError& error) {
        core::counters().add("serve.daemon.malformed_frames", 1);
        send_error(socket, wire::ErrorCode::kMalformedFrame, error.what());
        return true;
      }
      try {
        if (!roster_.contains(request.entity)) {
          throw common::PreconditionError("unknown entity in ingest request: " +
                                          request.entity);
        }
        if (!request.ticks.empty() && request.ticks.cols() != store_.num_channels()) {
          throw common::PreconditionError(
              "ingest tick width " + std::to_string(request.ticks.cols()) +
              " disagrees with the domain's " + std::to_string(store_.num_channels()) +
              " channels");
        }
        store_.append_block(request.entity, request.ticks, request.regimes);
        wire::IngestReply reply;
        reply.accepted = request.ticks.rows();
        reply.total_ticks = store_.ticks(request.entity);
        wire::send_frame(socket, wire::MessageType::kIngestReply,
                         wire::encode_ingest_reply(reply));
        core::counters().add("serve.daemon.ingests", 1);
        core::counters().add("serve.daemon.ticks_ingested", request.ticks.rows());
      } catch (const common::SocketError&) {
        throw;
      } catch (const common::PreconditionError& error) {
        send_error(socket, wire::ErrorCode::kBadRequest, error.what());
      } catch (const std::exception& error) {
        send_error(socket, wire::ErrorCode::kInternal, error.what());
      }
      return true;
    }
    case wire::MessageType::kScoreLatest: {
      wire::ScoreLatestRequest request;
      try {
        request = wire::decode_score_latest_request(frame.payload);
      } catch (const common::SerializationError& error) {
        core::counters().add("serve.daemon.malformed_frames", 1);
        send_error(socket, wire::ErrorCode::kMalformedFrame, error.what());
        return true;
      }
      try {
        if (request.count == 0) {
          throw common::PreconditionError("score-latest window count must be >= 1");
        }
        const std::size_t seq_len = request.seq_len != 0
                                        ? static_cast<std::size_t>(request.seq_len)
                                        : config_.store_seq_len;
        // Windows are zero-copy views over the store; unknown entities and
        // too-short histories surface as PreconditionError -> BadRequest.
        const std::vector<data::WindowView> views = store_.latest_windows(
            request.entity, seq_len, static_cast<std::size_t>(request.count));
        const ScoreResponse response = service_.score_views(request.entity, views);
        wire::send_frame(socket, wire::MessageType::kScoreLatestReply,
                         wire::encode_score_response(response));
        core::counters().add("serve.daemon.scores", 1);
        core::counters().add("serve.daemon.windows_scored", views.size());
      } catch (const common::SocketError&) {
        throw;
      } catch (const common::PreconditionError& error) {
        send_error(socket, wire::ErrorCode::kBadRequest, error.what());
      } catch (const std::exception& error) {
        send_error(socket, wire::ErrorCode::kInternal, error.what());
      }
      return true;
    }
    case wire::MessageType::kStats: {
      wire::StatsSnapshot stats = core::counters().snapshot();
      stats.emplace_back("serve.daemon.generation", service_.generation());
      stats.emplace_back("serve.daemon.adaptive_enabled", controller_ ? 1 : 0);
      const data::ColumnStore::Stats store_stats = store_.stats();
      stats.emplace_back("serve.store.entities", store_stats.entities);
      stats.emplace_back("serve.store.ticks", store_stats.ticks);
      stats.emplace_back("serve.store.segments", store_stats.segments);
      stats.emplace_back("serve.store.bytes_mapped", store_stats.bytes_mapped);
      // Canary gauges: the tracker's exact counters plus the derived rates
      // scaled to integer ppm/micro units (the wire's stats values are u64).
      const CanaryMetrics canary = service_.canary_metrics();
      const auto scaled_micro = [](double value) -> std::uint64_t {
        const double micro = std::abs(value) * 1e6;
        if (micro >= 9.0e18) return 9000000000000000000ULL;
        return static_cast<std::uint64_t>(micro);
      };
      stats.emplace_back("serve.canary.mirroring",
                         canary.state == CanaryState::kMirroring ? 1 : 0);
      stats.emplace_back("serve.canary.epoch", canary.epoch);
      stats.emplace_back("serve.canary.candidate_generation",
                         service_.candidate_generation());
      stats.emplace_back("serve.canary.window_total", canary.mirrored_windows);
      stats.emplace_back("serve.canary.request_total", canary.mirrored_requests);
      stats.emplace_back("serve.canary.evaluations", canary.evaluations);
      stats.emplace_back("serve.canary.breach_streak", canary.breach_streak);
      for (std::size_t c = 0; c < canary.clusters.size(); ++c) {
        const CanaryClusterMetrics& cluster = canary.clusters[c];
        const std::string prefix =
            std::string("serve.canary.") + to_string(static_cast<Cluster>(c));
        stats.emplace_back(prefix + ".windows", cluster.mirrored_windows);
        stats.emplace_back(prefix + ".primary_flags", cluster.primary_flags);
        stats.emplace_back(prefix + ".candidate_flags", cluster.candidate_flags);
        stats.emplace_back(prefix + ".state_flips", cluster.state_flips);
        stats.emplace_back(prefix + ".flag_delta_ppm",
                           scaled_micro(cluster.flag_rate_delta()));
        stats.emplace_back(prefix + ".risk_distance_micro",
                           scaled_micro(cluster.risk_distance()));
      }
      wire::send_frame(socket, wire::MessageType::kStatsReply, wire::encode_stats(stats));
      return true;
    }
    case wire::MessageType::kHealth: {
      // Deliberately cheap: no counter snapshot, no allocation beyond the
      // reply — this is what a router polls every few hundred ms per shard.
      wire::HealthReply reply;
      reply.draining = false;
      reply.generation = service_.generation();
      wire::send_frame(socket, wire::MessageType::kHealthReply,
                       wire::encode_health_reply(reply));
      return true;
    }
    case wire::MessageType::kRefresh: {
      wire::RefreshReply reply;
      if (controller_) {
        try {
          // Let any in-flight automatic refresh settle first so the reply
          // is deterministic about what is being served afterwards. In
          // canary mode a manual Refresh always FORCES a rebuild: staging
          // a candidate is safe by construction (the mirror measures it
          // before anything changes), so the operator verb means "start a
          // canary now", not "maybe, if the partition moved".
          controller_->drain();
          reply.refreshed = controller_->maybe_refresh(config_.adaptive.canary);
        } catch (const std::exception& error) {
          core::counters().add("serve.adaptive.refresh_failures", 1);
          send_error(socket, wire::ErrorCode::kInternal, error.what());
          return true;
        }
      }
      reply.generation = service_.generation();
      wire::send_frame(socket, wire::MessageType::kRefreshReply,
                       wire::encode_refresh_reply(reply));
      return true;
    }
    case wire::MessageType::kPromote: {
      wire::PromoteRequest request;
      try {
        request = wire::decode_promote_request(frame.payload);
      } catch (const common::SerializationError& error) {
        core::counters().add("serve.daemon.malformed_frames", 1);
        send_error(socket, wire::ErrorCode::kMalformedFrame, error.what());
        return true;
      }
      try {
        wire::PromoteReply reply;
        // Throws PreconditionError when a DIFFERENT candidate is staged.
        reply.applied = service_.promote_candidate(request.generation);
        if (!reply.applied) {
          // Nothing staged. A repeat of a promote that already landed
          // (explicit generation == the serving primary) is idempotent
          // success; anything else names an unknown generation.
          if (request.generation == 0 ||
              service_.generation() != request.generation) {
            throw common::PreconditionError(
                request.generation == 0
                    ? "no canary candidate staged"
                    : "promote names unknown generation " +
                          std::to_string(request.generation));
          }
        }
        reply.generation = service_.generation();
        wire::send_frame(socket, wire::MessageType::kPromoteReply,
                         wire::encode_promote_reply(reply));
        core::counters().add("serve.daemon.promotes", 1);
      } catch (const common::SocketError&) {
        throw;
      } catch (const common::PreconditionError& error) {
        send_error(socket, wire::ErrorCode::kBadRequest, error.what());
      } catch (const std::exception& error) {
        send_error(socket, wire::ErrorCode::kInternal, error.what());
      }
      return true;
    }
    case wire::MessageType::kRollback: {
      wire::RollbackRequest request;
      try {
        request = wire::decode_rollback_request(frame.payload);
      } catch (const common::SerializationError& error) {
        core::counters().add("serve.daemon.malformed_frames", 1);
        send_error(socket, wire::ErrorCode::kMalformedFrame, error.what());
        return true;
      }
      try {
        wire::RollbackReply reply;
        reply.applied = service_.rollback_candidate(request.generation);
        // A repeat rollback (explicit generation, nothing staged) is
        // idempotent success — the candidate is gone either way. Only the
        // bare form must name SOMETHING to roll back.
        if (!reply.applied && request.generation == 0) {
          throw common::PreconditionError("no canary candidate staged");
        }
        reply.generation = service_.generation();
        wire::send_frame(socket, wire::MessageType::kRollbackReply,
                         wire::encode_rollback_reply(reply));
        core::counters().add("serve.daemon.rollbacks", 1);
      } catch (const common::SocketError&) {
        throw;
      } catch (const common::PreconditionError& error) {
        send_error(socket, wire::ErrorCode::kBadRequest, error.what());
      } catch (const std::exception& error) {
        send_error(socket, wire::ErrorCode::kInternal, error.what());
      }
      return true;
    }
    case wire::MessageType::kShutdown: {
      wire::send_frame(socket, wire::MessageType::kShutdownReply, {});
      request_stop();
      return false;
    }
    default:
      // Reply-typed frames (and the router-only Drain) arriving at a
      // shard: a confused peer, not a corrupt stream — answer and keep
      // the connection.
      send_error(socket, wire::ErrorCode::kBadRequest,
                 std::string("unexpected message type on the server side: ") +
                     wire::to_string(frame.type));
      return true;
  }
}

// --- client ------------------------------------------------------------------

namespace {

/// The pre-mesh constructor's policy: dial once, never reconnect.
DaemonClientConfig fail_fast_config() {
  DaemonClientConfig config;
  config.channel.reconnect = false;
  config.channel.backoff.max_attempts = 1;
  return config;
}

}  // namespace

DaemonClient::DaemonClient(common::Endpoint endpoint, DaemonClientConfig config)
    : endpoint_(std::move(endpoint)),
      pool_(endpoint_, config.channel, config.pool_size) {
  // Fail fast on a dead endpoint instead of on the first request: dial one
  // channel now (it returns to the pool immediately).
  pool_.acquire()->ensure_connected();
}

DaemonClient::DaemonClient(const std::filesystem::path& socket_path)
    : DaemonClient(common::Endpoint::unix_socket(socket_path), fail_fast_config()) {}

wire::Frame DaemonClient::roundtrip(wire::MessageType type, const std::string& payload,
                                    wire::MessageType expected_reply, bool retryable) {
  wire::ChannelPool::Lease channel = pool_.acquire();
  wire::Frame reply = channel->roundtrip(type, payload, retryable);
  if (reply.type == wire::MessageType::kError) {
    const wire::ErrorFrame error = wire::decode_error(reply.payload);
    const std::string what = std::string("daemon error (") + wire::to_string(error.code) +
                             "): " + error.message;
    switch (error.code) {
      case wire::ErrorCode::kBadRequest:
        throw common::PreconditionError(what);
      case wire::ErrorCode::kMalformedFrame:
      case wire::ErrorCode::kUnsupportedVersion:
        throw common::SerializationError(what);
      case wire::ErrorCode::kInternal:
      case wire::ErrorCode::kUnavailable:
        break;
    }
    throw std::runtime_error(what);
  }
  if (reply.type != expected_reply) {
    throw common::SerializationError(
        std::string("wire: expected ") + wire::to_string(expected_reply) + ", got " +
        wire::to_string(reply.type));
  }
  return reply;
}

ScoreResponse DaemonClient::score(const ScoreRequest& request) {
  const wire::Frame reply =
      roundtrip(wire::MessageType::kScore, wire::encode_score_request(request),
                wire::MessageType::kScoreReply, /*retryable=*/true);
  return wire::decode_score_response(reply.payload);
}

wire::IngestReply DaemonClient::ingest(const wire::IngestRequest& request) {
  // retryable=false: an append replayed on a fresh connection would be
  // double-counted — see the header contract.
  const wire::Frame reply =
      roundtrip(wire::MessageType::kIngest, wire::encode_ingest_request(request),
                wire::MessageType::kIngestReply, /*retryable=*/false);
  return wire::decode_ingest_reply(reply.payload);
}

ScoreResponse DaemonClient::score_latest(const wire::ScoreLatestRequest& request) {
  const wire::Frame reply = roundtrip(wire::MessageType::kScoreLatest,
                                      wire::encode_score_latest_request(request),
                                      wire::MessageType::kScoreLatestReply,
                                      /*retryable=*/true);
  return wire::decode_score_response(reply.payload);
}

wire::StatsSnapshot DaemonClient::stats() {
  const wire::Frame reply = roundtrip(wire::MessageType::kStats, {},
                                      wire::MessageType::kStatsReply, /*retryable=*/true);
  return wire::decode_stats(reply.payload);
}

wire::HealthReply DaemonClient::health() {
  const wire::Frame reply = roundtrip(wire::MessageType::kHealth, {},
                                      wire::MessageType::kHealthReply, /*retryable=*/true);
  return wire::decode_health_reply(reply.payload);
}

wire::RefreshReply DaemonClient::refresh() {
  const wire::Frame reply =
      roundtrip(wire::MessageType::kRefresh, {}, wire::MessageType::kRefreshReply,
                /*retryable=*/true);
  return wire::decode_refresh_reply(reply.payload);
}

wire::PromoteReply DaemonClient::promote(std::uint64_t generation) {
  wire::PromoteRequest request;
  request.generation = generation;
  const wire::Frame reply =
      roundtrip(wire::MessageType::kPromote, wire::encode_promote_request(request),
                wire::MessageType::kPromoteReply, /*retryable=*/true);
  return wire::decode_promote_reply(reply.payload);
}

wire::RollbackReply DaemonClient::rollback(std::uint64_t generation) {
  wire::RollbackRequest request;
  request.generation = generation;
  const wire::Frame reply =
      roundtrip(wire::MessageType::kRollback, wire::encode_rollback_request(request),
                wire::MessageType::kRollbackReply, /*retryable=*/true);
  return wire::decode_rollback_reply(reply.payload);
}

wire::DrainReply DaemonClient::drain(const std::string& shard) {
  wire::DrainRequest request;
  request.shard = shard;
  const wire::Frame reply =
      roundtrip(wire::MessageType::kDrain, wire::encode_drain_request(request),
                wire::MessageType::kDrainReply, /*retryable=*/false);
  return wire::decode_drain_reply(reply.payload);
}

void DaemonClient::shutdown() {
  (void)roundtrip(wire::MessageType::kShutdown, {}, wire::MessageType::kShutdownReply,
                  /*retryable=*/false);
}

}  // namespace goodones::serve
