// The adaptive serving loop — the paper's Appendix-D/§V sketch made
// operational: "an iterative process that regularly reassesses patient
// risk profiles and continuously updates them as new data become
// available".
//
// The controller taps the ScoringService's feedback hook, feeds every
// scored window's serving-time risk (Eq. 1) into a risk::OnlineRiskProfiler,
// and periodically reassesses the vulnerability partition. When the
// reassessment moves entities across the vulnerability boundary it rebuilds
// the serving bundle — by default a routing-only rebuild (clone the bundle,
// reroute entities to their new cluster detector), or through a caller
// -supplied BundleRebuilder that retrains the per-cluster detectors via
// core::RiskProfilingFramework::train_detector — stamps it with the next
// generation and hot-swaps it into the service. Static defenses are what
// adaptive adversaries learn around; this loop is the repo's answer.
//
// Persistence: given a ModelRegistry, every published generation and the
// profiler's own state are persisted, so a restarted controller resumes
// profiling exactly where it left off (restore_state) and a restarted
// server can resolve the newest bundle via ModelRegistry::latest().
//
// Threading: ingest() (and therefore the hook) may be called from
// concurrent score_batch threads; it takes only a short observation lock.
// When the cadence trips, the tripping request ENQUEUES a refresh for the
// controller's dedicated refresh worker and returns immediately — scoring
// latency never includes a rebuild, even a detector-retraining one (the
// daemon e2e test pins this with a latency bound). The worker reassesses,
// rebuilds, persists and hot-swaps via the service's lock-free
// atomic-snapshot publish; back-to-back trips while a rebuild is running
// coalesce into one queued request. drain() blocks until the queue is
// empty and the worker idle (tests, clean shutdown). Setting
// async_refresh = false restores the legacy inline behavior (the tripping
// scoring thread pays the rebuild) for hosts that must not own a
// background thread. Auto-refresh failures (full disk, throwing
// rebuilder) are contained on either path: scoring keeps serving the
// current generation and the failure lands in the
// "serve.adaptive.refresh_failures" counter and the log — under the async
// worker the counter is the ONLY signal, so monitor it.
// Stop traffic before destroying the controller (the hook captures `this`).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "core/strategy.hpp"
#include "risk/online.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"

namespace goodones::serve {

struct AdaptiveControllerConfig {
  risk::OnlineProfilerConfig profiler;
  /// Scored windows (across all entities) between partition reassessments.
  std::size_t reassess_every_windows = 256;
  /// Reassess (and possibly refresh) automatically from the feedback hook.
  /// With false, the loop is driven manually through maybe_refresh().
  bool auto_refresh = true;
  /// Run auto-refreshes on a dedicated worker thread: the tripping scoring
  /// request only enqueues and returns. With false, the tripping scoring
  /// thread runs the rebuild inline (legacy behavior; only sensible when
  /// rebuilds are cheap routing-only clones). Ignored when auto_refresh is
  /// false — maybe_refresh() always runs on its caller's thread.
  bool async_refresh = true;
  /// Stop hot-swapping blindly: publish rebuilt bundles as canary
  /// CANDIDATES (ScoringService::install_candidate) instead of swapping
  /// them straight in. The service's CanaryPolicy then auto-promotes or
  /// auto-rollbacks on mirrored evidence, with Promote/Rollback frames as
  /// the manual override. While a candidate is staged, further refreshes
  /// are deferred (the "serve.canary.refresh_deferred" counter) so only
  /// one canary is ever in flight.
  bool canary = false;
};

class AdaptiveController {
 public:
  /// Builds the next bundle for a reassessed partition: receives the
  /// canonical vulnerability partition (entity indices) and the generation
  /// to stamp. The serve-layer default is a routing-only rebuild via
  /// clone_serving_model; pass a rebuilder wrapping
  /// build_serving_model(framework, kind, partition, generation) to also
  /// retrain the per-cluster detectors on their new victim sets.
  using BundleRebuilder =
      std::function<ServingModel(const core::VulnerabilityClusters&, std::uint64_t)>;

  /// Attaches to `service`'s feedback hook. `registry`, when non-null, must
  /// outlive the controller; generations and profiler state persist through
  /// it. A previously persisted profiler state for the bundle's key is
  /// restored automatically (call reset_state() to discard it instead).
  explicit AdaptiveController(ScoringService& service,
                              AdaptiveControllerConfig config = {},
                              BundleRebuilder rebuilder = {},
                              const ModelRegistry* registry = nullptr);
  ~AdaptiveController();

  AdaptiveController(const AdaptiveController&) = delete;
  AdaptiveController& operator=(const AdaptiveController&) = delete;

  /// Feedback entry point (the hook calls this): folds the response's
  /// per-window risks into the profiler and, when auto_refresh is on and
  /// enough windows accumulated, reassesses and possibly refreshes.
  void ingest(const ScoreRequest& request, const ScoreResponse& response);

  /// Forces a reassessment now (regardless of the window cadence) and
  /// refreshes the served bundle if the partition moved. Returns true when
  /// a new generation was published (canary mode: staged as candidate).
  /// No-op (false) until every entity has contributed at least one
  /// observation batch, or while another refresh is already in flight.
  /// With `force`, a rebuild is published even when the reassessed
  /// partition equals the served routing — the canary-mode operator path
  /// ("stage a candidate now and let the mirror measure it"), and why the
  /// daemon forces manual Refresh frames when canary mode is on.
  bool maybe_refresh(bool force = false);

  /// Blocks until the refresh worker has no queued and no in-flight work
  /// (immediately when async_refresh is off). After drain() returns, every
  /// cadence trip observed so far has either published or been resolved as
  /// a no-op/failure.
  void drain();

  /// Number of generations this controller has published.
  std::size_t refreshes() const;

  /// Total windows ingested through the feedback hook.
  std::size_t windows_ingested() const;

  /// The profiler's current view (levels, batches, last partition).
  /// Snapshot-read under the controller lock.
  risk::OnlineRiskProfiler profiler_snapshot() const;

  /// Persists the profiler state through `registry` under the served
  /// bundle's key (also done automatically on refresh when the controller
  /// owns a registry).
  void save_state(const ModelRegistry& registry) const;

  /// Restores profiler state persisted by save_state. Throws
  /// common::SerializationError on missing/corrupt state or roster drift.
  void restore_state(const ModelRegistry& registry);

  /// Discards all accumulated profiling evidence (fresh profiler, window
  /// cadence reset). Persisted state on disk is left untouched.
  void reset_state();

 private:
  RegistryKey state_key() const;
  /// Single-flight refresh: reassess under the short observation lock,
  /// then rebuild/persist/swap with the lock RELEASED so concurrent
  /// scoring threads never stall at the feedback tap. Returns true when a
  /// new generation was published; false when not ready, nothing moved,
  /// or another refresh is already in flight.
  bool try_refresh(bool force = false);
  /// Runs try_refresh containing failures to the refresh_failures counter
  /// and the log (the auto-refresh contract on both the worker and the
  /// legacy inline path).
  void contained_refresh();
  /// Hands a refresh to the worker (coalescing with one already queued).
  void enqueue_refresh();
  void worker_loop();
  ServingModel routing_only_rebuild(const ServingModel& current,
                                    const core::VulnerabilityClusters& clusters,
                                    std::uint64_t generation) const;

  ScoringService& service_;
  AdaptiveControllerConfig config_;
  BundleRebuilder rebuilder_;
  const ModelRegistry* registry_;

  mutable std::mutex mutex_;  // guards profiler_ + window counters
  risk::OnlineRiskProfiler profiler_;
  std::size_t windows_since_reassess_ = 0;
  std::size_t windows_ingested_ = 0;
  std::atomic<bool> refresh_in_flight_{false};
  std::atomic<std::size_t> refreshes_{0};

  // Refresh worker (async_refresh): its own mutex so enqueueing never
  // contends with the observation lock beyond the cadence check itself.
  mutable std::mutex worker_mutex_;
  std::condition_variable worker_cv_;
  bool refresh_queued_ = false;
  bool worker_busy_ = false;
  bool worker_stop_ = false;
  std::thread worker_;
};

}  // namespace goodones::serve
