#include "serve/scoring_service.hpp"

#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "core/metrics.hpp"
#include "core/sample_features.hpp"
#include "risk/profile.hpp"

namespace goodones::serve {

namespace {

/// (request, window) coordinate of one window routed to an entity.
struct WindowRef {
  std::size_t request = 0;
  std::size_t window = 0;
};

/// The per-entity scoring core shared by score_batch (legacy Score frames)
/// and score_views (column-store windows): one predict_batch, one detector
/// score_batch, then the per-window verdict math. Consumes POINTERS into
/// caller-owned feature storage — the hot path copies no window bytes.
/// Result i corresponds to features[i]/regimes[i].
std::vector<WindowScore> score_entity_windows(const ServingModel& model,
                                              std::size_t entity,
                                              std::span<const nn::Matrix* const> features,
                                              std::span<const data::Regime> regimes,
                                              nn::Precision precision) {
  const core::DomainSpec& spec = model.spec;
  const predict::Forecaster& forecaster = model.forecasters[entity];
  const detect::AnomalyDetector& detector = model.detector_for(entity);
  const bool sample_level =
      detector.granularity() == detect::InputGranularity::kSample;

  const std::vector<double> forecasts = forecaster.predict_batch(features, precision);

  // One detector call for the whole (entity, batch) group. The detector
  // transforms are real computations (sample extraction / scaling), not
  // window copies.
  std::vector<nn::Matrix> detector_inputs;
  detector_inputs.reserve(features.size());
  for (const nn::Matrix* w : features) {
    detector_inputs.push_back(sample_level
                                  ? core::window_sample(spec, model.detector_scaler, *w)
                                  : model.detector_scaler.transform(*w));
  }
  const std::vector<double> anomaly_scores =
      detector.score_batch(std::span<const nn::Matrix>(detector_inputs));

  std::vector<WindowScore> scores(features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    const nn::Matrix& window = *features[i];
    WindowScore& score = scores[i];

    score.forecast = forecasts[i];
    const double last_observed = window(window.rows() - 1, spec.target_channel);
    score.residual = score.forecast - last_observed;
    score.observed_state = spec.thresholds.classify(last_observed, regimes[i]);
    score.predicted_state = spec.thresholds.classify(score.forecast, regimes[i]);
    score.risk = spec.severity.coefficient(score.observed_state, score.predicted_state) *
                 risk::deviation_magnitude(last_observed, score.forecast);

    score.anomaly_score = anomaly_scores[i];
    score.flagged = detector.flags_from_score(detector_inputs[i], score.anomaly_score);
  }
  return scores;
}

}  // namespace

ScoringService::Snapshot::Snapshot(ServingModel m) : model(std::move(m)) {
  GO_EXPECTS(!model.forecasters.empty());
  GO_EXPECTS(model.forecasters.size() == model.entity_names.size());
  GO_EXPECTS(model.entity_cluster.size() == model.entity_names.size());
  GO_EXPECTS(model.cluster_detectors[0] != nullptr);
  GO_EXPECTS(model.cluster_detectors[1] != nullptr);
  entity_lookup.reserve(model.entity_names.size());
  for (std::size_t i = 0; i < model.entity_names.size(); ++i) {
    entity_lookup.emplace(model.entity_names[i], i);
  }
}

ScoringService::ScoringService(ServingModel model, ScoringServiceConfig config)
    : tracker_(config.canary),
      pool_(std::make_unique<common::ThreadPool>(config.threads)),
      precision_(config.precision) {
  GO_EXPECTS(config.precision != nn::Precision::kMixed);
  snapshot_.store(std::make_shared<const Snapshot>(std::move(model)),
                  std::memory_order_release);
}

ScoringService::~ScoringService() = default;

std::shared_ptr<const ServingModel> ScoringService::model() const {
  // Aliasing constructor: the returned pointer shares the snapshot's
  // lifetime, so a caller-held bundle survives any number of swaps.
  std::shared_ptr<const Snapshot> snap = snapshot();
  return std::shared_ptr<const ServingModel>(snap, &snap->model);
}

std::uint64_t ScoringService::generation() const {
  return snapshot()->model.generation;
}

void ScoringService::swap_model(ServingModel model) {
  const std::shared_ptr<const Snapshot> current = snapshot();
  // The roster is the service's identity: swapping to a different entity
  // set would silently invalidate the profiler/controller state keyed to
  // it. Routing (entity_cluster) and detectors are exactly what may change.
  GO_EXPECTS(model.entity_names == current->model.entity_names);
  snapshot_.store(std::make_shared<const Snapshot>(std::move(model)),
                  std::memory_order_release);
}

void ScoringService::set_observer(ScoreObserver observer) {
  if (observer) {
    observer_.store(std::make_shared<const ScoreObserver>(std::move(observer)),
                    std::memory_order_release);
  } else {
    observer_.store(nullptr, std::memory_order_release);
  }
}

void ScoringService::set_canary_observer(CanaryObserver observer) {
  if (observer) {
    canary_observer_.store(
        std::make_shared<const CanaryObserver>(std::move(observer)),
        std::memory_order_release);
  } else {
    canary_observer_.store(nullptr, std::memory_order_release);
  }
}

void ScoringService::emit_canary_event(const CanaryEvent& event) const {
  if (const std::shared_ptr<const CanaryObserver> observer =
          canary_observer_.load(std::memory_order_acquire)) {
    (*observer)(event);
  }
}

void ScoringService::install_candidate(ServingModel model) {
  const std::lock_guard<std::mutex> lock(canary_mutex_);
  const std::shared_ptr<const Snapshot> current = snapshot();
  // Same roster contract as swap_model: the candidate must be able to take
  // over the primary's traffic the instant it is promoted.
  GO_EXPECTS(model.entity_names == current->model.entity_names);
  auto staged = std::make_shared<const Snapshot>(std::move(model));
  const std::uint64_t candidate_gen = staged->model.generation;
  candidate_.store(std::move(staged), std::memory_order_release);
  tracker_.install(candidate_gen);
  core::counters().add("serve.canary.installs", 1);

  CanaryEvent event;
  event.action = CanaryEvent::Action::kInstalled;
  event.candidate_generation = candidate_gen;
  event.primary_generation = current->model.generation;
  emit_canary_event(event);
}

std::uint64_t ScoringService::candidate_generation() const {
  const std::shared_ptr<const Snapshot> candidate =
      candidate_.load(std::memory_order_acquire);
  return candidate ? candidate->model.generation : 0;
}

bool ScoringService::promote_candidate(std::uint64_t generation) {
  return resolve_candidate(/*promote=*/true, generation, std::nullopt,
                           /*automatic=*/false);
}

bool ScoringService::rollback_candidate(std::uint64_t generation) {
  return resolve_candidate(/*promote=*/false, generation, std::nullopt,
                           /*automatic=*/false);
}

CanaryMetrics ScoringService::canary_metrics() const {
  return tracker_.metrics();
}

bool ScoringService::resolve_candidate(bool promote, std::uint64_t generation,
                                       std::optional<std::uint64_t> epoch,
                                       bool automatic) {
  const std::lock_guard<std::mutex> lock(canary_mutex_);
  const std::shared_ptr<const Snapshot> candidate =
      candidate_.load(std::memory_order_acquire);
  if (!candidate) return false;
  if (generation != 0 && candidate->model.generation != generation) {
    throw common::PreconditionError(
        std::string(promote ? "promote" : "rollback") +
        " names generation " + std::to_string(generation) +
        " but the staged candidate is generation " +
        std::to_string(candidate->model.generation));
  }
  // Exactly-once: the first resolver (manual frame or tracker decision)
  // wins; a stale auto decision from an abandoned epoch never fires.
  if (!tracker_.finish(epoch.value_or(tracker_.epoch()))) return false;
  const CanaryMetrics final_metrics = tracker_.metrics();

  CanaryEvent event;
  event.candidate_generation = candidate->model.generation;
  event.primary_generation = snapshot()->model.generation;
  event.mirrored_windows = final_metrics.mirrored_windows;
  event.automatic = automatic;

  auto& counters = core::counters();
  if (promote) {
    snapshot_.store(candidate, std::memory_order_release);
    event.action = CanaryEvent::Action::kPromoted;
    counters.add("serve.canary.promotions", 1);
    counters.add(automatic ? "serve.canary.auto_promotions"
                           : "serve.canary.manual_promotions",
                 1);
  } else {
    event.action = CanaryEvent::Action::kRolledBack;
    counters.add("serve.canary.rollbacks", 1);
    counters.add(automatic ? "serve.canary.auto_rollbacks"
                           : "serve.canary.manual_rollbacks",
                 1);
  }
  candidate_.store(nullptr, std::memory_order_release);
  emit_canary_event(event);
  return true;
}

void ScoringService::mirror_one(const std::string& entity,
                                std::span<const nn::Matrix* const> features,
                                std::span<const data::Regime> regimes,
                                const ScoreResponse& primary) const {
  if (!tracker_.armed()) return;
  const std::optional<std::uint64_t> epoch = tracker_.begin_mirror(entity);
  if (!epoch) return;
  const std::shared_ptr<const Snapshot> candidate =
      candidate_.load(std::memory_order_acquire);
  if (!candidate) return;
  try {
    const auto found = candidate->entity_lookup.find(entity);
    if (found == candidate->entity_lookup.end()) return;
    const std::vector<WindowScore> shadow = score_entity_windows(
        candidate->model, found->second, features, regimes, precision_);

    std::vector<WindowDelta> deltas(shadow.size());
    for (std::size_t i = 0; i < shadow.size(); ++i) {
      deltas[i].cluster = primary.cluster;
      deltas[i].primary_flagged = primary.windows[i].flagged;
      deltas[i].candidate_flagged = shadow[i].flagged;
      deltas[i].state_flip =
          shadow[i].predicted_state != primary.windows[i].predicted_state;
      deltas[i].primary_risk = primary.windows[i].risk;
      deltas[i].candidate_risk = shadow[i].risk;
    }
    auto& counters = core::counters();
    counters.add("serve.canary.mirrored_requests", 1);
    counters.add("serve.canary.mirrored_windows", deltas.size());

    const CanaryTracker::AccumulateResult result =
        tracker_.accumulate(*epoch, deltas);
    if (result.accepted && result.decision) {
      // The scoring thread applies the tracker's verdict; resolve_candidate
      // only mutates the candidate/primary atomics, so the const scoring
      // path stays logically const for every observable response.
      const_cast<ScoringService*>(this)->resolve_candidate(
          *result.decision == CanaryDecision::kPromote, 0, epoch,
          /*automatic=*/true);
    }
  } catch (const std::exception&) {
    // The primary already answered; a broken candidate must surface as a
    // metric, never as a serving failure.
    core::counters().add("serve.canary.mirror_failures", 1);
  }
}

void ScoringService::mirror_scored(std::span<const ScoreRequest> requests,
                                   std::span<const ScoreResponse> responses) const {
  if (!tracker_.armed()) return;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const ScoreRequest& request = requests[r];
    if (request.windows.empty()) continue;
    std::vector<const nn::Matrix*> features;
    std::vector<data::Regime> regimes;
    features.reserve(request.windows.size());
    regimes.reserve(request.windows.size());
    for (const TelemetryWindow& window : request.windows) {
      features.push_back(&window.features);
      regimes.push_back(window.regime);
    }
    mirror_one(request.entity, features, regimes, responses[r]);
  }
}

ScoreResponse ScoringService::score(const ScoreRequest& request) const {
  return score_batch(std::span<const ScoreRequest>(&request, 1)).front();
}

std::vector<ScoreResponse> ScoringService::score_batch(
    std::span<const ScoreRequest> requests) const {
  // One coherent snapshot per batch: every window of every request in this
  // call scores against this generation, regardless of concurrent swaps.
  const std::shared_ptr<const Snapshot> snap = snapshot();
  const ServingModel& model = snap->model;
  const core::DomainSpec& spec = model.spec;

  // Resolve entities and validate what the bundle can check generically
  // (entity names, channel counts) before any work is dispatched. Row-count
  // expectations are detector-specific (MAD-GAN consumes fixed seq_len
  // windows) and surface as PreconditionError from the scoring phase.
  // Grouping is keyed by active entities only (not fleet size): a
  // single-window request against a fleet of thousands must stay O(1).
  std::vector<ScoreResponse> responses(requests.size());
  std::unordered_map<std::size_t, std::vector<WindowRef>> per_entity;
  std::size_t total_windows = 0;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const ScoreRequest& request = requests[r];
    const auto found = snap->entity_lookup.find(request.entity);
    if (found == snap->entity_lookup.end()) {
      throw common::PreconditionError("unknown entity in score request: " +
                                      request.entity);
    }
    const std::size_t entity = found->second;
    responses[r].entity_index = entity;
    responses[r].cluster = model.entity_cluster[entity];
    responses[r].generation = model.generation;
    responses[r].windows.resize(request.windows.size());
    for (std::size_t w = 0; w < request.windows.size(); ++w) {
      const TelemetryWindow& window = request.windows[w];
      GO_EXPECTS(window.features.rows() >= 1);
      GO_EXPECTS(window.features.cols() == spec.num_channels);
      per_entity[entity].push_back({r, w});
    }
    total_windows += request.windows.size();
  }

  // Entities with traffic shard across the pool; within one entity every
  // window (across all requests) goes through a single predict_batch and a
  // single detector score_batch.
  std::vector<const std::pair<const std::size_t, std::vector<WindowRef>>*> active;
  active.reserve(per_entity.size());
  for (const auto& group : per_entity) active.push_back(&group);

  common::parallel_for(*pool_, active.size(), [&](std::size_t a) {
    const std::size_t entity = active[a]->first;
    const std::vector<WindowRef>& refs = active[a]->second;

    // Zero-copy regroup: the group is a pointer/regime view straight into
    // the request storage — no window bytes move on the serve hot path.
    std::vector<const nn::Matrix*> features;
    std::vector<data::Regime> regimes;
    features.reserve(refs.size());
    regimes.reserve(refs.size());
    for (const WindowRef& ref : refs) {
      const TelemetryWindow& window = requests[ref.request].windows[ref.window];
      features.push_back(&window.features);
      regimes.push_back(window.regime);
    }

    const std::vector<WindowScore> scores =
        score_entity_windows(model, entity, features, regimes, precision_);
    for (std::size_t i = 0; i < refs.size(); ++i) {
      responses[refs[i].request].windows[refs[i].window] = scores[i];
    }
  });

  auto& counters = core::counters();
  counters.add("serve.requests", requests.size());
  counters.add("serve.windows", total_windows);
  counters.add("serve.entity_batches", active.size());

  // Feedback tap: deliver finished responses to the adaptive controller
  // (or any other observer) after all scoring work for this call is done.
  if (const std::shared_ptr<const ScoreObserver> observer =
          observer_.load(std::memory_order_acquire)) {
    for (std::size_t r = 0; r < requests.size(); ++r) {
      (*observer)(requests[r], responses[r]);
    }
  }

  // Canary mirroring runs strictly after the responses are final: the
  // candidate can only read the primary's verdicts, never shape them.
  mirror_scored(requests, responses);
  return responses;
}

ScoreResponse ScoringService::score_views(const std::string& entity,
                                          std::span<const data::WindowView> views) const {
  const std::shared_ptr<const Snapshot> snap = snapshot();
  const ServingModel& model = snap->model;

  const auto found = snap->entity_lookup.find(entity);
  if (found == snap->entity_lookup.end()) {
    throw common::PreconditionError("unknown entity in score request: " + entity);
  }
  const std::size_t index = found->second;

  ScoreResponse response;
  response.entity_index = index;
  response.cluster = model.entity_cluster[index];
  response.generation = model.generation;

  if (!views.empty()) {
    // Gather each view exactly once — the single copy on this path; the
    // store segments themselves are never duplicated.
    std::vector<nn::Matrix> gathered(views.size());
    std::vector<const nn::Matrix*> features(views.size());
    std::vector<data::Regime> regimes(views.size());
    for (std::size_t i = 0; i < views.size(); ++i) {
      GO_EXPECTS(views[i].rows() >= 1);
      GO_EXPECTS(views[i].cols() == model.spec.num_channels);
      views[i].gather(gathered[i]);
      features[i] = &gathered[i];
      regimes[i] = views[i].regime();
    }
    response.windows = score_entity_windows(model, index, features, regimes, precision_);

    // Mirror while the gathered scratch matrices are still alive — the
    // candidate scores the exact same bytes the primary just scored.
    mirror_one(entity, features, regimes, response);
  }

  auto& counters = core::counters();
  counters.add("serve.requests", 1);
  counters.add("serve.windows", views.size());
  counters.add("serve.entity_batches", views.empty() ? 0 : 1);

  if (const std::shared_ptr<const ScoreObserver> observer =
          observer_.load(std::memory_order_acquire)) {
    // The observer contract hands over the finished response plus a request
    // naming the entity; window bytes stay in the store (the adaptive
    // controller's feedback tap consumes only the response).
    ScoreRequest observed;
    observed.entity = entity;
    (*observer)(observed, response);
  }
  return response;
}

}  // namespace goodones::serve
