#include "serve/scoring_service.hpp"

#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "core/metrics.hpp"
#include "core/sample_features.hpp"
#include "risk/profile.hpp"

namespace goodones::serve {

namespace {

/// (request, window) coordinate of one window routed to an entity.
struct WindowRef {
  std::size_t request = 0;
  std::size_t window = 0;
};

}  // namespace

ScoringService::ScoringService(ServingModel model, ScoringServiceConfig config)
    : model_(std::move(model)),
      pool_(std::make_unique<common::ThreadPool>(config.threads)) {
  GO_EXPECTS(!model_.forecasters.empty());
  GO_EXPECTS(model_.forecasters.size() == model_.entity_names.size());
  GO_EXPECTS(model_.entity_cluster.size() == model_.entity_names.size());
  GO_EXPECTS(model_.cluster_detectors[0] != nullptr);
  GO_EXPECTS(model_.cluster_detectors[1] != nullptr);
  entity_lookup_.reserve(model_.entity_names.size());
  for (std::size_t i = 0; i < model_.entity_names.size(); ++i) {
    entity_lookup_.emplace(model_.entity_names[i], i);
  }
}

ScoringService::~ScoringService() = default;

ScoreResponse ScoringService::score(const ScoreRequest& request) const {
  return score_batch(std::span<const ScoreRequest>(&request, 1)).front();
}

std::vector<ScoreResponse> ScoringService::score_batch(
    std::span<const ScoreRequest> requests) const {
  const core::DomainSpec& spec = model_.spec;

  // Resolve entities and validate what the bundle can check generically
  // (entity names, channel counts) before any work is dispatched. Row-count
  // expectations are detector-specific (MAD-GAN consumes fixed seq_len
  // windows) and surface as PreconditionError from the scoring phase.
  // Grouping is keyed by active entities only (not fleet size): a
  // single-window request against a fleet of thousands must stay O(1).
  std::vector<ScoreResponse> responses(requests.size());
  std::unordered_map<std::size_t, std::vector<WindowRef>> per_entity;
  std::size_t total_windows = 0;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const ScoreRequest& request = requests[r];
    const auto found = entity_lookup_.find(request.entity);
    if (found == entity_lookup_.end()) {
      throw common::PreconditionError("unknown entity in score request: " +
                                      request.entity);
    }
    const std::size_t entity = found->second;
    responses[r].entity_index = entity;
    responses[r].cluster = model_.entity_cluster[entity];
    responses[r].windows.resize(request.windows.size());
    for (std::size_t w = 0; w < request.windows.size(); ++w) {
      const TelemetryWindow& window = request.windows[w];
      GO_EXPECTS(window.features.rows() >= 1);
      GO_EXPECTS(window.features.cols() == spec.num_channels);
      per_entity[entity].push_back({r, w});
    }
    total_windows += request.windows.size();
  }

  // Entities with traffic shard across the pool; within one entity every
  // window (across all requests) goes through a single predict_batch.
  std::vector<const std::pair<const std::size_t, std::vector<WindowRef>>*> active;
  active.reserve(per_entity.size());
  for (const auto& group : per_entity) active.push_back(&group);

  common::parallel_for(*pool_, active.size(), [&](std::size_t a) {
    const std::size_t entity = active[a]->first;
    const std::vector<WindowRef>& refs = active[a]->second;
    const predict::Forecaster& forecaster = model_.forecasters[entity];
    const detect::AnomalyDetector& detector = model_.detector_for(entity);
    const bool sample_level =
        detector.granularity() == detect::InputGranularity::kSample;

    std::vector<nn::Matrix> batch;
    batch.reserve(refs.size());
    for (const WindowRef& ref : refs) {
      batch.push_back(requests[ref.request].windows[ref.window].features);
    }
    const std::vector<double> forecasts = forecaster.predict_batch(batch);

    for (std::size_t i = 0; i < refs.size(); ++i) {
      const WindowRef& ref = refs[i];
      const TelemetryWindow& window = requests[ref.request].windows[ref.window];
      WindowScore& score = responses[ref.request].windows[ref.window];

      score.forecast = forecasts[i];
      const double last_observed =
          window.features(window.features.rows() - 1, spec.target_channel);
      score.residual = score.forecast - last_observed;
      score.observed_state = spec.thresholds.classify(last_observed, window.regime);
      score.predicted_state = spec.thresholds.classify(score.forecast, window.regime);
      score.risk = spec.severity.coefficient(score.observed_state, score.predicted_state) *
                   risk::deviation_magnitude(last_observed, score.forecast);

      const nn::Matrix detector_input =
          sample_level ? core::window_sample(spec, model_.detector_scaler, window.features)
                       : model_.detector_scaler.transform(window.features);
      score.anomaly_score = detector.anomaly_score(detector_input);
      score.flagged = detector.flags_from_score(detector_input, score.anomaly_score);
    }
  });

  auto& counters = core::counters();
  counters.add("serve.requests", requests.size());
  counters.add("serve.windows", total_windows);
  counters.add("serve.entity_batches", active.size());
  return responses;
}

}  // namespace goodones::serve
