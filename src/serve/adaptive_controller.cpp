#include "serve/adaptive_controller.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/metrics.hpp"

namespace goodones::serve {

namespace {

risk::OnlineRiskProfiler make_profiler(const ScoringService& service,
                                       const risk::OnlineProfilerConfig& config) {
  return risk::OnlineRiskProfiler(service.model()->entity_names, config);
}

}  // namespace

AdaptiveController::AdaptiveController(ScoringService& service,
                                       AdaptiveControllerConfig config,
                                       BundleRebuilder rebuilder,
                                       const ModelRegistry* registry)
    : service_(service),
      config_(config),
      rebuilder_(std::move(rebuilder)),
      registry_(registry),
      profiler_(make_profiler(service, config.profiler)) {
  GO_EXPECTS(config_.reassess_every_windows >= 1);
  if (registry_ != nullptr && registry_->contains_profiler(state_key())) {
    registry_->load_profiler(state_key(), profiler_);
    common::log_info("adaptive controller resumed profiler state from registry");
  }
  if (config_.auto_refresh && config_.async_refresh) {
    worker_ = std::thread([this] { worker_loop(); });
  }
  service_.set_observer([this](const ScoreRequest& request, const ScoreResponse& response) {
    ingest(request, response);
  });
}

AdaptiveController::~AdaptiveController() {
  service_.set_observer(nullptr);
  if (worker_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(worker_mutex_);
      worker_stop_ = true;
    }
    worker_cv_.notify_all();
    worker_.join();
  }
}

RegistryKey AdaptiveController::state_key() const {
  const std::shared_ptr<const ServingModel> model = service_.model();
  RegistryKey key;
  key.domain_key = model->domain_key;
  key.fingerprint = model->fingerprint;
  key.detector_kind = model->detector_kind;
  key.generation = model->generation;
  return key;
}

void AdaptiveController::ingest(const ScoreRequest& /*request*/,
                                const ScoreResponse& response) {
  if (response.windows.empty()) return;
  std::vector<double> risks;
  risks.reserve(response.windows.size());
  for (const WindowScore& window : response.windows) risks.push_back(window.risk);

  bool due = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    profiler_.observe_risks(response.entity_index, risks);
    windows_since_reassess_ += risks.size();
    windows_ingested_ += risks.size();
    due = config_.auto_refresh &&
          windows_since_reassess_ >= config_.reassess_every_windows;
  }
  core::counters().add("serve.adaptive.windows_ingested", risks.size());
  // Refresh OUTSIDE the observation lock: the heavy rebuild must never
  // stall concurrent scoring threads at the feedback tap. On the default
  // async path the tripping request only ENQUEUES for the refresh worker —
  // its own latency never includes the rebuild. On either path a failed
  // refresh (full disk, throwing rebuilder) must never abort a scoring
  // request — keep serving the current generation and surface the failure
  // through counters/logs. maybe_refresh() still throws for callers who
  // drive the loop explicitly.
  if (!due) return;
  if (worker_.joinable()) {
    enqueue_refresh();
  } else {
    contained_refresh();
  }
}

void AdaptiveController::contained_refresh() {
  try {
    (void)try_refresh();
  } catch (const std::exception& error) {
    core::counters().add("serve.adaptive.refresh_failures", 1);
    common::log_warn("adaptive refresh failed; serving continues on the current "
                     "generation: ", error.what());
  }
}

void AdaptiveController::enqueue_refresh() {
  {
    const std::lock_guard<std::mutex> lock(worker_mutex_);
    if (refresh_queued_) return;  // coalesce: one queued rebuild covers all trips
    refresh_queued_ = true;
  }
  core::counters().add("serve.adaptive.refreshes_enqueued", 1);
  worker_cv_.notify_one();
}

void AdaptiveController::worker_loop() {
  std::unique_lock<std::mutex> lock(worker_mutex_);
  for (;;) {
    worker_cv_.wait(lock, [this] { return refresh_queued_ || worker_stop_; });
    if (worker_stop_) return;
    refresh_queued_ = false;
    worker_busy_ = true;
    lock.unlock();
    contained_refresh();
    lock.lock();
    worker_busy_ = false;
    worker_cv_.notify_all();  // wake drain()ers
  }
}

void AdaptiveController::drain() {
  if (!worker_.joinable()) return;
  std::unique_lock<std::mutex> lock(worker_mutex_);
  worker_cv_.wait(lock, [this] { return !refresh_queued_ && !worker_busy_; });
}

bool AdaptiveController::maybe_refresh(bool force) { return try_refresh(force); }

bool AdaptiveController::try_refresh(bool force) {
  // Single-flight: while one thread rebuilds, others keep scoring (their
  // ingest() only takes the short observation lock above) and simply skip.
  if (refresh_in_flight_.exchange(true, std::memory_order_acq_rel)) return false;
  struct FlagGuard {
    std::atomic<bool>& flag;
    ~FlagGuard() { flag.store(false, std::memory_order_release); }
  } guard{refresh_in_flight_};

  // One canary at a time: while a candidate is still being measured, keep
  // accumulating evidence and let the staged canary resolve first.
  if (config_.canary && service_.candidate_generation() != 0) {
    core::counters().add("serve.canary.refresh_deferred", 1);
    return false;
  }

  // Phase 1 (under the lock, cheap): readiness check, reassessment, and
  // the routing comparison. The profiler is copied out so persistence can
  // happen after the lock is dropped.
  core::VulnerabilityClusters clusters;
  std::shared_ptr<const ServingModel> current;
  std::unique_ptr<risk::OnlineRiskProfiler> profiler_copy;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // reassess() needs evidence for every tracked entity; until the
    // quietest one has reported, keep accumulating (the counter keeps
    // growing so the next ingest retries immediately).
    for (std::size_t i = 0; i < profiler_.num_victims(); ++i) {
      if (profiler_.batches(i) == 0) return false;
    }
    windows_since_reassess_ = 0;

    const risk::OnlineRiskProfiler::Partition& partition = profiler_.reassess();
    clusters.less_vulnerable = partition.less_vulnerable;
    clusters.more_vulnerable = partition.more_vulnerable;

    // Compare against the served routing: a refresh only pays when an
    // entity actually moved across the vulnerability boundary. Swaps only
    // happen in this single-flight section, so `current` stays the served
    // bundle until we publish.
    current = service_.model();
    std::vector<Cluster> next_routing(current->entity_names.size(),
                                      Cluster::kLessVulnerable);
    for (const std::size_t p : clusters.more_vulnerable) {
      next_routing[p] = Cluster::kMoreVulnerable;
    }
    core::counters().add("serve.adaptive.reassessments", 1);
    if (next_routing == current->entity_cluster && !force) return false;
    profiler_copy = std::make_unique<risk::OnlineRiskProfiler>(profiler_);
  }

  // Phase 2 (lock-free for observers): rebuild, persist, publish.
  const std::uint64_t generation = current->generation + 1;
  ServingModel next = rebuilder_ ? rebuilder_(clusters, generation)
                                 : routing_only_rebuild(*current, clusters, generation);
  next.generation = generation;  // the stamp is the controller's contract

  // Persist BEFORE publication on either path: a generation must exist in
  // the registry the moment any verdict (served or mirrored) can name it,
  // so replay-by-generation never dangles.
  if (registry_ != nullptr) {
    registry_->save(next);
    registry_->save_profiler(state_key(), *profiler_copy);
  }
  if (config_.canary) {
    // Measured rollout: the rebuild enters as candidate; the canary policy
    // (or an operator Promote/Rollback) decides whether it becomes primary.
    service_.install_candidate(std::move(next));
    refreshes_.fetch_add(1, std::memory_order_acq_rel);
    core::counters().add("serve.adaptive.refreshes", 1);
    common::log_info("adaptive refresh staged generation ", generation,
                     " as canary candidate (", clusters.more_vulnerable.size(),
                     " entities more-vulnerable)");
    return true;
  }
  service_.swap_model(std::move(next));
  refreshes_.fetch_add(1, std::memory_order_acq_rel);
  core::counters().add("serve.adaptive.refreshes", 1);
  common::log_info("adaptive refresh published generation ", generation, " (",
                   clusters.more_vulnerable.size(), " entities more-vulnerable)");
  return true;
}

ServingModel AdaptiveController::routing_only_rebuild(
    const ServingModel& current, const core::VulnerabilityClusters& clusters,
    std::uint64_t generation) const {
  ServingModel next = clone_serving_model(current);
  next.generation = generation;
  std::fill(next.entity_cluster.begin(), next.entity_cluster.end(),
            Cluster::kLessVulnerable);
  for (const std::size_t p : clusters.more_vulnerable) {
    GO_EXPECTS(p < next.entity_cluster.size());
    next.entity_cluster[p] = Cluster::kMoreVulnerable;
  }
  return next;
}

std::size_t AdaptiveController::refreshes() const {
  return refreshes_.load(std::memory_order_acquire);
}

std::size_t AdaptiveController::windows_ingested() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return windows_ingested_;
}

risk::OnlineRiskProfiler AdaptiveController::profiler_snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return profiler_;
}

void AdaptiveController::save_state(const ModelRegistry& registry) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  registry.save_profiler(state_key(), profiler_);
}

void AdaptiveController::restore_state(const ModelRegistry& registry) {
  const std::lock_guard<std::mutex> lock(mutex_);
  registry.load_profiler(state_key(), profiler_);
}

void AdaptiveController::reset_state() {
  const std::lock_guard<std::mutex> lock(mutex_);
  profiler_ = make_profiler(service_, config_.profiler);
  windows_since_reassess_ = 0;
}

}  // namespace goodones::serve
