// The daemon's length-prefixed binary wire protocol.
//
// Every message on the socket is one frame:
//
//   u32 magic ("GOW1")  u32 version  u32 type  u64 payload_len  payload
//
// built from the same little-endian stream primitives every persisted
// artifact in the repo uses (nn/serialize.hpp), so doubles cross the wire
// bit-exactly: a daemon verdict is bitwise-identical to the in-process
// ScoringService verdict for the same bundle generation — the property
// tests/serve_daemon_test.cpp pins. Malformed input (bad magic, unsupported
// version, oversized or truncated payload, undecodable payload bytes)
// throws the typed common::SerializationError; the daemon answers with an
// Error frame and, for framing-level corruption, closes the connection
// (after a bad header the stream offset can no longer be trusted).
//
// Versioning rules (see docs/PROTOCOL.md): the magic never changes; any
// change to the frame header or an existing payload layout bumps kVersion;
// new message types may be added within a version (an old server answers an
// unknown type with an Error frame, not a disconnect).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/socket.hpp"
#include "serve/scoring_service.hpp"

namespace goodones::serve::wire {

/// A frame header carrying a protocol version other than kVersion. Its own
/// type (still a SerializationError) so the daemon can answer with the
/// distinct UnsupportedVersion error code.
class ProtocolVersionError : public common::SerializationError {
 public:
  using common::SerializationError::SerializationError;
};

inline constexpr std::uint32_t kMagic = 0x31574F47;  // "GOW1" little-endian
inline constexpr std::uint32_t kVersion = 1;
/// Upper bound on one frame's payload; anything larger is malformed by
/// definition (a Score frame of even a large fleet backfill stays far under).
inline constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;

enum class MessageType : std::uint32_t {
  kScore = 1,          ///< client -> daemon: ScoreRequest
  kScoreReply = 2,     ///< daemon -> client: ScoreResponse
  kStats = 3,          ///< client -> daemon: empty payload
  kStatsReply = 4,     ///< daemon -> client: counter snapshot
  kRefresh = 5,        ///< client -> daemon: empty payload, force a reassessment
  kRefreshReply = 6,   ///< daemon -> client: RefreshReply
  kShutdown = 7,       ///< client -> daemon: empty payload, stop the daemon
  kShutdownReply = 8,  ///< daemon -> client: empty payload (acknowledged)
  kError = 9,          ///< daemon -> client: ErrorFrame
};

enum class ErrorCode : std::uint32_t {
  kMalformedFrame = 1,      ///< framing/payload corruption; connection closes
  kUnsupportedVersion = 2,  ///< header version != kVersion; connection closes
  kBadRequest = 3,          ///< well-formed but unservable (unknown entity, bad shape)
  kInternal = 4,            ///< server-side failure (refresh rebuild threw, ...)
};

struct Frame {
  MessageType type = MessageType::kError;
  std::string payload;
};

struct RefreshReply {
  bool refreshed = false;         ///< true when a new generation was published
  std::uint64_t generation = 0;   ///< generation serving after the call
};

struct ErrorFrame {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Counter snapshot as served by a Stats round trip.
using StatsSnapshot = std::vector<std::pair<std::string, std::uint64_t>>;

// --- frame I/O ---------------------------------------------------------------

/// Writes one frame (header + payload) as a single send.
void send_frame(common::Socket& socket, MessageType type, std::string_view payload);

/// Reads one frame. nullopt on clean EOF at a frame boundary (the peer hung
/// up between requests). Throws common::SerializationError on bad magic,
/// unsupported version, oversized length, or EOF mid-frame;
/// common::SocketError on transport failure. An UNKNOWN type value passes
/// through (the forward-compatibility rule: the dispatcher answers it with
/// bad-request instead of the connection dying as corrupt).
std::optional<Frame> recv_frame(common::Socket& socket);

// --- payload codecs ----------------------------------------------------------
// Encoders produce the payload bytes (no header); decoders throw
// common::SerializationError on truncated or out-of-range payloads.

std::string encode_score_request(const ScoreRequest& request);
ScoreRequest decode_score_request(const std::string& payload);

std::string encode_score_response(const ScoreResponse& response);
ScoreResponse decode_score_response(const std::string& payload);

std::string encode_stats(const StatsSnapshot& stats);
StatsSnapshot decode_stats(const std::string& payload);

std::string encode_refresh_reply(const RefreshReply& reply);
RefreshReply decode_refresh_reply(const std::string& payload);

std::string encode_error(const ErrorFrame& error);
ErrorFrame decode_error(const std::string& payload);

const char* to_string(MessageType type) noexcept;
const char* to_string(ErrorCode code) noexcept;

}  // namespace goodones::serve::wire
