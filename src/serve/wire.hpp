// The daemon's length-prefixed binary wire protocol.
//
// Every message on the socket is one frame:
//
//   u32 magic ("GOW1")  u32 version  u32 type  u64 payload_len  payload
//
// built from the same little-endian stream primitives every persisted
// artifact in the repo uses (nn/serialize.hpp), so doubles cross the wire
// bit-exactly: a daemon verdict is bitwise-identical to the in-process
// ScoringService verdict for the same bundle generation — the property
// tests/serve_daemon_test.cpp pins. Malformed input (bad magic, unsupported
// version, oversized or truncated payload, undecodable payload bytes)
// throws the typed common::SerializationError; the daemon answers with an
// Error frame and, for framing-level corruption, closes the connection
// (after a bad header the stream offset can no longer be trusted).
//
// Versioning rules (see docs/PROTOCOL.md): the magic never changes; any
// change to the frame header or an existing payload layout bumps kVersion;
// new message types may be added within a version (an old server answers an
// unknown type with an Error frame, not a disconnect).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/socket.hpp"
#include "serve/scoring_service.hpp"

namespace goodones::serve::wire {

/// A frame header carrying a protocol version other than kVersion. Its own
/// type (still a SerializationError) so the daemon can answer with the
/// distinct UnsupportedVersion error code.
class ProtocolVersionError : public common::SerializationError {
 public:
  using common::SerializationError::SerializationError;
};

inline constexpr std::uint32_t kMagic = 0x31574F47;  // "GOW1" little-endian
inline constexpr std::uint32_t kVersion = 1;
/// Upper bound on one frame's payload; anything larger is malformed by
/// definition (a Score frame of even a large fleet backfill stays far under).
inline constexpr std::uint64_t kMaxPayloadBytes = 1ull << 30;

enum class MessageType : std::uint32_t {
  kScore = 1,          ///< client -> daemon: ScoreRequest
  kScoreReply = 2,     ///< daemon -> client: ScoreResponse
  kStats = 3,          ///< client -> daemon: empty payload
  kStatsReply = 4,     ///< daemon -> client: counter snapshot
  kRefresh = 5,        ///< client -> daemon: empty payload, force a reassessment
  kRefreshReply = 6,   ///< daemon -> client: RefreshReply
  kShutdown = 7,       ///< client -> daemon: empty payload, stop the daemon
  kShutdownReply = 8,  ///< daemon -> client: empty payload (acknowledged)
  kError = 9,          ///< daemon -> client: ErrorFrame
  kHealth = 10,        ///< client -> server: empty payload, cheap liveness probe
  kHealthReply = 11,   ///< server -> client: HealthReply
  kDrain = 12,         ///< client -> ROUTER: DrainRequest (remove + drain a shard)
  kDrainReply = 13,    ///< router -> client: DrainReply
  kIngest = 14,        ///< client -> daemon: IngestRequest (stream raw ticks)
  kIngestReply = 15,   ///< daemon -> client: IngestReply
  kScoreLatest = 16,      ///< client -> daemon: ScoreLatestRequest
  kScoreLatestReply = 17, ///< daemon -> client: ScoreResponse (same payload as kScoreReply)
  kPromote = 18,          ///< client -> daemon: PromoteRequest (canary -> primary)
  kPromoteReply = 19,     ///< daemon -> client: PromoteReply
  kRollback = 20,         ///< client -> daemon: RollbackRequest (drop the canary)
  kRollbackReply = 21,    ///< daemon -> client: RollbackReply
};

enum class ErrorCode : std::uint32_t {
  kMalformedFrame = 1,      ///< framing/payload corruption; connection closes
  kUnsupportedVersion = 2,  ///< header version != kVersion; connection closes
  kBadRequest = 3,          ///< well-formed but unservable (unknown entity, bad shape)
  kInternal = 4,            ///< server-side failure (refresh rebuild threw, ...)
  kUnavailable = 5,         ///< the shard owning the request is unreachable (mesh)
};

struct Frame {
  MessageType type = MessageType::kError;
  std::string payload;
};

struct RefreshReply {
  bool refreshed = false;         ///< true when a new generation was published
  std::uint64_t generation = 0;   ///< generation serving after the call
};

struct ErrorFrame {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

/// Liveness probe answer. A backend daemon reports its own serving
/// generation; a router reports the max generation across its healthy
/// shards. `draining` is reserved for a server winding down (a router
/// never sets it today; a backend mid-drain would).
struct HealthReply {
  bool draining = false;
  std::uint64_t generation = 0;
};

/// Router admin: remove shard `shard` from the ring and drain it — new
/// requests reroute immediately, in-flight forwards finish, the shard's
/// pooled connections close. Addressed by shard NAME (the ring identity),
/// not endpoint — a shard keeps its identity across restarts/readdressing.
struct DrainRequest {
  std::string shard;
};

struct DrainReply {
  bool drained = false;  ///< false = no shard by that name was in the ring
  std::string message;
};

/// Streamed raw ticks for one entity: the daemon appends them to its
/// ColumnStore, so later ScoreLatest requests cut windows server-side
/// instead of the client re-sending seq_len rows of history per window.
/// The payload leads with the entity name, so a router routes Ingest with
/// the same peek it uses for Score. NOT idempotent: replaying an Ingest
/// appends the ticks twice, so clients must not auto-retry it on a torn
/// connection (DaemonClient marks the round trip non-retryable).
struct IngestRequest {
  std::string entity;
  /// (num_ticks x num_channels) raw readings, one row per tick.
  nn::Matrix ticks;
  /// Operating regime per tick (same length as ticks has rows).
  std::vector<data::Regime> regimes;
};

struct IngestReply {
  std::uint64_t accepted = 0;     ///< ticks appended by this request
  std::uint64_t total_ticks = 0;  ///< entity's stored history after the append
};

/// "Score entity X now": the daemon cuts the `count` most recent windows of
/// `seq_len` ticks from its store and scores them — the reply payload is a
/// ScoreResponse, bitwise-identical to a Score frame carrying the same
/// window bytes. seq_len 0 selects the daemon's configured default
/// geometry. Both fields are capped at 2^20 on the wire (larger values are
/// malformed by definition).
struct ScoreLatestRequest {
  std::string entity;
  std::uint64_t count = 1;
  std::uint64_t seq_len = 0;
};

/// Operator override of the canary policy: make the staged candidate the
/// primary now. `generation` 0 addresses whatever candidate is staged; a
/// non-zero generation must name the staged candidate (an unknown
/// generation is answered with a BadRequest error frame). IDEMPOTENT and
/// retry-safe: repeating a Promote that already succeeded answers
/// applied = false with the (unchanged) serving generation, so
/// DaemonClient auto-retries it on a torn connection.
struct PromoteRequest {
  std::uint64_t generation = 0;
};

struct PromoteReply {
  bool applied = false;          ///< true when THIS call performed the swap
  std::uint64_t generation = 0;  ///< primary generation after the call
};

/// Operator override: drop the staged candidate without touching the
/// primary. Same addressing and idempotency contract as PromoteRequest
/// (a repeat answers applied = false; retry-safe).
struct RollbackRequest {
  std::uint64_t generation = 0;
};

struct RollbackReply {
  bool applied = false;          ///< true when THIS call dropped a candidate
  std::uint64_t generation = 0;  ///< primary generation after the call
};

/// Counter snapshot as served by a Stats round trip.
using StatsSnapshot = std::vector<std::pair<std::string, std::uint64_t>>;

// --- frame I/O ---------------------------------------------------------------

/// Writes one frame (header + payload) as a single send.
void send_frame(common::Socket& socket, MessageType type, std::string_view payload);

/// Reads one frame. nullopt on clean EOF at a frame boundary (the peer hung
/// up between requests). Throws common::SerializationError on bad magic,
/// unsupported version, oversized length, or EOF mid-frame;
/// common::SocketError on transport failure. An UNKNOWN type value passes
/// through (the forward-compatibility rule: the dispatcher answers it with
/// bad-request instead of the connection dying as corrupt).
std::optional<Frame> recv_frame(common::Socket& socket);

// --- payload codecs ----------------------------------------------------------
// Encoders produce the payload bytes (no header); decoders throw
// common::SerializationError on truncated or out-of-range payloads.

std::string encode_score_request(const ScoreRequest& request);
ScoreRequest decode_score_request(const std::string& payload);

std::string encode_score_response(const ScoreResponse& response);
ScoreResponse decode_score_response(const std::string& payload);

std::string encode_stats(const StatsSnapshot& stats);
StatsSnapshot decode_stats(const std::string& payload);

std::string encode_refresh_reply(const RefreshReply& reply);
RefreshReply decode_refresh_reply(const std::string& payload);

std::string encode_error(const ErrorFrame& error);
ErrorFrame decode_error(const std::string& payload);

std::string encode_health_reply(const HealthReply& reply);
HealthReply decode_health_reply(const std::string& payload);

std::string encode_drain_request(const DrainRequest& request);
DrainRequest decode_drain_request(const std::string& payload);

std::string encode_drain_reply(const DrainReply& reply);
DrainReply decode_drain_reply(const std::string& payload);

std::string encode_ingest_request(const IngestRequest& request);
IngestRequest decode_ingest_request(const std::string& payload);

std::string encode_ingest_reply(const IngestReply& reply);
IngestReply decode_ingest_reply(const std::string& payload);

std::string encode_score_latest_request(const ScoreLatestRequest& request);
ScoreLatestRequest decode_score_latest_request(const std::string& payload);

std::string encode_promote_request(const PromoteRequest& request);
PromoteRequest decode_promote_request(const std::string& payload);

std::string encode_promote_reply(const PromoteReply& reply);
PromoteReply decode_promote_reply(const std::string& payload);

std::string encode_rollback_request(const RollbackRequest& request);
RollbackRequest decode_rollback_request(const std::string& payload);

std::string encode_rollback_reply(const RollbackReply& reply);
RollbackReply decode_rollback_reply(const std::string& payload);

/// Reads ONLY the leading entity name out of a Score, Ingest or
/// ScoreLatest payload (all three lead with the entity string) — all a
/// router needs to pick the owning shard. The rest of the payload is
/// forwarded byte-for-byte untouched, which is what keeps mesh verdicts
/// bitwise-identical to direct ones for free. Throws
/// common::SerializationError when even the name is truncated.
std::string peek_score_entity(const std::string& payload);

const char* to_string(MessageType type) noexcept;
const char* to_string(ErrorCode code) noexcept;

// --- client-side channels ----------------------------------------------------

/// Reconnection policy of a FrameChannel.
struct FrameChannelConfig {
  /// Dial policy — both for the first connect and for every reconnect.
  common::BackoffConfig backoff;
  /// With true, a transport failure mid-round-trip tears the connection
  /// down and retries the SAME request on a fresh one (idempotent
  /// round trips only — the caller declares that per call). With false a
  /// dead transport surfaces immediately as common::SocketError.
  bool reconnect = true;
  /// How many fresh connections one retryable round trip may burn before
  /// the transport error propagates (each reconnect itself runs the full
  /// backoff schedule, so the worst-case wall clock is
  /// retry_rounds x backoff worst case — bounded by construction).
  std::size_t retry_rounds = 3;
  /// Per-socket receive timeout (0 = none). Health probes set this so a
  /// hung peer surfaces as SocketError instead of wedging the prober.
  int recv_timeout_ms = 0;
};

/// One logical request/reply stream to a wire-protocol server, surviving
/// the server's restarts: connects lazily, reconnects with bounded
/// exponential backoff + jitter, and (for round trips the caller marks
/// retryable) replays the request on a fresh connection when the transport
/// dies mid-exchange. This is the client half of the mesh's fault model —
/// serve::DaemonClient pools these, and the router's per-shard forwarding
/// channels are the same class.
///
/// NOT thread-safe: one channel serves one round trip at a time (pool
/// channels via ChannelPool for concurrency).
class FrameChannel {
 public:
  explicit FrameChannel(common::Endpoint endpoint, FrameChannelConfig config = {});

  const common::Endpoint& endpoint() const noexcept { return endpoint_; }
  bool connected() const noexcept { return socket_.valid(); }

  /// Dials now (with the configured backoff) instead of on first use.
  void ensure_connected();

  /// Sends one request frame and reads the reply frame. An Error frame IS
  /// a reply (returned, never retried). nullopt never escapes: a clean
  /// server-side close before the reply is a transport failure here and
  /// follows the retry rules above.
  Frame roundtrip(MessageType type, std::string_view payload, bool retryable);

  /// Drops the connection (the next round trip redials).
  void close() noexcept;

  /// How many times the channel re-established a connection after having
  /// been connected before — the fault-injection tests' probe that
  /// reconnect-with-backoff actually happened.
  std::uint64_t reconnects() const noexcept { return reconnects_; }

 private:
  common::Endpoint endpoint_;
  FrameChannelConfig config_;
  common::Socket socket_;
  bool was_connected_ = false;
  std::uint64_t reconnects_ = 0;
};

/// A lazily-grown, bounded pool of FrameChannels to one endpoint.
/// acquire() hands out an exclusive lease (RAII — returns the channel on
/// destruction) and blocks when all `capacity` channels are leased.
class ChannelPool {
 public:
  ChannelPool(common::Endpoint endpoint, FrameChannelConfig config, std::size_t capacity);

  class Lease {
   public:
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    ~Lease();
    FrameChannel& operator*() const noexcept { return *channel_; }
    FrameChannel* operator->() const noexcept { return channel_; }

   private:
    friend class ChannelPool;
    Lease(ChannelPool* pool, FrameChannel* channel) : pool_(pool), channel_(channel) {}
    ChannelPool* pool_;
    FrameChannel* channel_;
  };

  Lease acquire();

  const common::Endpoint& endpoint() const noexcept { return endpoint_; }

  /// Closes every currently-unleased connection. The pool stays usable —
  /// channels redial on next use — so a drain pairs this with an external
  /// "stop routing here" flag and waits for outstanding leases first.
  void close_connections();

  /// Total reconnects across all channels (see FrameChannel::reconnects).
  std::uint64_t reconnects() const;

 private:
  void release(FrameChannel* channel);

  common::Endpoint endpoint_;
  FrameChannelConfig config_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable available_;
  std::vector<std::unique_ptr<FrameChannel>> channels_;  ///< all ever created
  std::vector<FrameChannel*> free_;
};

}  // namespace goodones::serve::wire
