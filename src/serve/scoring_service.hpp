// The serving-path API: score live telemetry windows against a persisted
// serving bundle.
//
// A ScoreRequest names a monitored entity and carries one or more raw
// telemetry windows; the response reports, per window, the personalized
// forecast, the residual against the persistence reference, the verdict of
// the entity's vulnerability-cluster detector (the paper's step-5 routing)
// and a severity-weighted live risk score — the serving-time analogue of
// the paper's Eq. 1, with the last observed reading standing in for the
// benign prediction (at test time there is no known-benign model output to
// diff against; evasion pressure lands exactly here, cf. Biggio et al.).
//
// Batching: all windows of all concurrent requests addressed to the same
// entity run through one Forecaster::predict_batch call and ONE
// AnomalyDetector::score_batch call (the roadmap's detector-batching step:
// MAD-GAN amortizes its latent inversion, kNN blocks its neighbor
// queries), and entities shard across the service's thread pool.
// Throughput counters land in core::metrics::counters() under the
// "serve." prefix.
//
// Hot-swap: the service holds its bundle as an immutable snapshot behind an
// atomic shared_ptr. swap_model() publishes a new bundle generation without
// blocking readers; every request resolves ONE snapshot on entry and scores
// entirely against it, so concurrent traffic never observes a mixed
// old/new fleet — each ScoreResponse names the generation that served it.
// This is what lets serve::AdaptiveController refresh routing online (the
// paper's Appendix-D iterative reassessment) under live load.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "data/column_store.hpp"
#include "data/labels.hpp"
#include "nn/matrix.hpp"
#include "nn/simd.hpp"
#include "serve/model_registry.hpp"

namespace goodones::serve {

/// One raw telemetry window as it arrives from the field: (seq_len x
/// num_channels) readings in raw units plus the operating regime at
/// prediction time (regimes gate both thresholds and severity).
struct TelemetryWindow {
  nn::Matrix features;
  data::Regime regime = data::Regime::kBaseline;
};

struct ScoreRequest {
  /// Entity display name as registered in the bundle (e.g. "A_3", "SA_0").
  std::string entity;
  std::vector<TelemetryWindow> windows;
};

/// Verdict for one window.
struct WindowScore {
  double forecast = 0.0;   ///< personalized forecaster output, raw units
  double residual = 0.0;   ///< forecast minus last observed target reading
  data::StateLabel observed_state = data::StateLabel::kNormal;  ///< last reading
  data::StateLabel predicted_state = data::StateLabel::kNormal; ///< forecast
  double anomaly_score = 0.0;  ///< cluster detector's score (higher = worse)
  bool flagged = false;        ///< cluster detector's final decision
  /// Serving-time Eq. 1: severity(observed -> predicted) * residual^2.
  double risk = 0.0;
};

struct ScoreResponse {
  std::size_t entity_index = 0;
  Cluster cluster = Cluster::kLessVulnerable;
  /// Generation of the bundle snapshot that scored this response. All
  /// windows of one response are always served by the same generation.
  std::uint64_t generation = 0;
  std::vector<WindowScore> windows;  ///< request window order
};

struct ScoringServiceConfig {
  /// Worker threads for cross-entity sharding (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Numeric lane of the forecast batches. kDouble (the default) keeps the
  /// bitwise-exact serving path; kFast swaps the LSTM gate transcendentals
  /// for the vectorized polynomial kernels (few-ulp forecasts, see
  /// docs/BENCHMARKS.md for measured detection-metric deltas). Detector
  /// scoring and thresholds are unaffected — only the forecaster lane
  /// changes. kMixed is not supported here (it needs per-model mirror
  /// state the service does not manage).
  nn::Precision precision = nn::Precision::kDouble;
};

class ScoringService {
 public:
  /// Observes every scored request after its response is assembled —
  /// the adaptive controller's feedback tap. Invoked on the scoring
  /// thread, once per request, AFTER the response is final; it must be
  /// thread-safe under concurrent score_batch calls.
  using ScoreObserver = std::function<void(const ScoreRequest&, const ScoreResponse&)>;

  /// Takes ownership of the bundle (load it via ModelRegistry::load or
  /// build it in memory via build_serving_model).
  explicit ScoringService(ServingModel model, ScoringServiceConfig config = {});
  ~ScoringService();

  ScoringService(const ScoringService&) = delete;
  ScoringService& operator=(const ScoringService&) = delete;

  /// The currently-served bundle snapshot. The pointer stays valid (and
  /// immutable) for as long as the caller holds it, even across swaps.
  std::shared_ptr<const ServingModel> model() const;

  /// Generation of the currently-served bundle.
  std::uint64_t generation() const;

  /// Atomically publishes a new bundle. In-flight requests finish against
  /// the snapshot they resolved on entry; requests arriving after the swap
  /// see the new generation. The new bundle must describe the same entity
  /// roster (the routing table may differ — that is the point).
  void swap_model(ServingModel model);

  /// Installs (or clears, with nullptr) the feedback observer.
  void set_observer(ScoreObserver observer);

  /// Scores one request (all its windows batch through one predict_batch
  /// and one detector score_batch).
  ScoreResponse score(const ScoreRequest& request) const;

  /// Scores concurrent requests: windows are regrouped per entity so each
  /// entity's forecaster sees one batch, and entities shard across the
  /// pool. Response i corresponds to requests[i]. Throws
  /// common::PreconditionError on an unknown entity, a window whose
  /// channel count disagrees with the bundle's spec, or a window whose
  /// row count violates the bundle detector's own geometry (MAD-GAN
  /// consumes fixed-seq_len windows; sample-level detectors accept any
  /// length >= 1).
  std::vector<ScoreResponse> score_batch(std::span<const ScoreRequest> requests) const;

  /// Scores zero-copy column-store windows for one entity (the ScoreLatest
  /// path: the daemon cuts WindowViews over its ColumnStore and scores them
  /// without ever materializing data::Window copies upstream). Each view is
  /// gathered exactly once into a scratch matrix — the single copy on this
  /// path — then runs the same scoring core as score()/score_batch(), so
  /// verdicts are bitwise-identical to a Score request carrying the same
  /// window bytes. The observer (if any) sees a request with the entity
  /// name and NO windows: the store owns the bytes, and the adaptive
  /// controller's feedback tap only consumes the response.
  ScoreResponse score_views(const std::string& entity,
                            std::span<const data::WindowView> views) const;

 private:
  /// One published bundle generation: the model plus its O(1) routing index,
  /// immutable after construction so readers need no lock.
  struct Snapshot {
    explicit Snapshot(ServingModel m);
    ServingModel model;
    std::unordered_map<std::string, std::size_t> entity_lookup;
  };

  std::shared_ptr<const Snapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
  std::atomic<std::shared_ptr<const ScoreObserver>> observer_;
  std::unique_ptr<common::ThreadPool> pool_;
  nn::Precision precision_ = nn::Precision::kDouble;
};

}  // namespace goodones::serve
