// The serving-path API: score live telemetry windows against a persisted
// serving bundle.
//
// A ScoreRequest names a monitored entity and carries one or more raw
// telemetry windows; the response reports, per window, the personalized
// forecast, the residual against the persistence reference, the verdict of
// the entity's vulnerability-cluster detector (the paper's step-5 routing)
// and a severity-weighted live risk score — the serving-time analogue of
// the paper's Eq. 1, with the last observed reading standing in for the
// benign prediction (at test time there is no known-benign model output to
// diff against; evasion pressure lands exactly here, cf. Biggio et al.).
//
// Batching: all windows of all concurrent requests addressed to the same
// entity run through one Forecaster::predict_batch call and ONE
// AnomalyDetector::score_batch call (the roadmap's detector-batching step:
// MAD-GAN amortizes its latent inversion, kNN blocks its neighbor
// queries), and entities shard across the service's thread pool.
// Throughput counters land in core::metrics::counters() under the
// "serve." prefix.
//
// Hot-swap: the service holds its bundle as an immutable snapshot behind an
// atomic shared_ptr. swap_model() publishes a new bundle generation without
// blocking readers; every request resolves ONE snapshot on entry and scores
// entirely against it, so concurrent traffic never observes a mixed
// old/new fleet — each ScoreResponse names the generation that served it.
// This is what lets serve::AdaptiveController refresh routing online (the
// paper's Appendix-D iterative reassessment) under live load.
//
// Canary: next to the primary snapshot the service can hold ONE candidate
// generation. The primary alone produces every response byte; after a
// response is assembled, a deterministic sample of traffic (CanaryTracker's
// splitmix draw over entity + request sequence) is re-scored against the
// candidate off the reply path and the verdict deltas accumulate in the
// tracker. When the tracker's policy decides — or an operator sends
// Promote/Rollback — the candidate either becomes the primary atomically
// (the same swap_model publication path) or is dropped. Either way the
// primary's verdicts are bitwise-identical to a service that never had a
// candidate at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "data/column_store.hpp"
#include "data/labels.hpp"
#include "nn/matrix.hpp"
#include "nn/simd.hpp"
#include "serve/canary.hpp"
#include "serve/model_registry.hpp"

namespace goodones::serve {

/// One raw telemetry window as it arrives from the field: (seq_len x
/// num_channels) readings in raw units plus the operating regime at
/// prediction time (regimes gate both thresholds and severity).
struct TelemetryWindow {
  nn::Matrix features;
  data::Regime regime = data::Regime::kBaseline;
};

struct ScoreRequest {
  /// Entity display name as registered in the bundle (e.g. "A_3", "SA_0").
  std::string entity;
  std::vector<TelemetryWindow> windows;
};

/// Verdict for one window.
struct WindowScore {
  double forecast = 0.0;   ///< personalized forecaster output, raw units
  double residual = 0.0;   ///< forecast minus last observed target reading
  data::StateLabel observed_state = data::StateLabel::kNormal;  ///< last reading
  data::StateLabel predicted_state = data::StateLabel::kNormal; ///< forecast
  double anomaly_score = 0.0;  ///< cluster detector's score (higher = worse)
  bool flagged = false;        ///< cluster detector's final decision
  /// Serving-time Eq. 1: severity(observed -> predicted) * residual^2.
  double risk = 0.0;
};

struct ScoreResponse {
  std::size_t entity_index = 0;
  Cluster cluster = Cluster::kLessVulnerable;
  /// Generation of the bundle snapshot that scored this response. All
  /// windows of one response are always served by the same generation.
  std::uint64_t generation = 0;
  std::vector<WindowScore> windows;  ///< request window order
};

struct ScoringServiceConfig {
  /// Worker threads for cross-entity sharding (0 = hardware concurrency).
  std::size_t threads = 0;
  /// Numeric lane of the forecast batches. kDouble (the default) keeps the
  /// bitwise-exact serving path; kFast swaps the LSTM gate transcendentals
  /// for the vectorized polynomial kernels (few-ulp forecasts, see
  /// docs/BENCHMARKS.md for measured detection-metric deltas). Detector
  /// scoring and thresholds are unaffected — only the forecaster lane
  /// changes. kMixed is not supported here (it needs per-model mirror
  /// state the service does not manage).
  nn::Precision precision = nn::Precision::kDouble;
  /// Sampling rate and promote/rollback policy for candidate generations.
  /// Inert until install_candidate() arms a canary.
  CanaryPolicy canary;
};

/// Emitted whenever the canary lifecycle transitions: a candidate is
/// installed, promoted to primary, or rolled back. `automatic` separates
/// tracker-policy decisions from operator Promote/Rollback frames.
struct CanaryEvent {
  enum class Action : std::uint8_t { kInstalled = 0, kPromoted = 1, kRolledBack = 2 };
  Action action = Action::kInstalled;
  std::uint64_t candidate_generation = 0;
  /// The primary generation the candidate was (or was being) measured
  /// against — for kPromoted this is the generation that just stepped down.
  std::uint64_t primary_generation = 0;
  std::uint64_t mirrored_windows = 0;
  bool automatic = false;
};

class ScoringService {
 public:
  /// Observes every scored request after its response is assembled —
  /// the adaptive controller's feedback tap. Invoked on the scoring
  /// thread, once per request, AFTER the response is final; it must be
  /// thread-safe under concurrent score_batch calls.
  using ScoreObserver = std::function<void(const ScoreRequest&, const ScoreResponse&)>;

  /// Takes ownership of the bundle (load it via ModelRegistry::load or
  /// build it in memory via build_serving_model).
  explicit ScoringService(ServingModel model, ScoringServiceConfig config = {});
  ~ScoringService();

  ScoringService(const ScoringService&) = delete;
  ScoringService& operator=(const ScoringService&) = delete;

  /// The currently-served bundle snapshot. The pointer stays valid (and
  /// immutable) for as long as the caller holds it, even across swaps.
  std::shared_ptr<const ServingModel> model() const;

  /// Generation of the currently-served bundle.
  std::uint64_t generation() const;

  /// Atomically publishes a new bundle. In-flight requests finish against
  /// the snapshot they resolved on entry; requests arriving after the swap
  /// see the new generation. The new bundle must describe the same entity
  /// roster (the routing table may differ — that is the point).
  void swap_model(ServingModel model);

  /// Installs (or clears, with nullptr) the feedback observer.
  void set_observer(ScoreObserver observer);

  /// Observes canary lifecycle transitions (install/promote/rollback) —
  /// the daemon's lineage-recording tap. Invoked with the canary lock
  /// held; it must not call back into the canary API.
  using CanaryObserver = std::function<void(const CanaryEvent&)>;
  void set_canary_observer(CanaryObserver observer);

  /// Stages `model` as the candidate generation and arms mirroring under
  /// the configured CanaryPolicy. The candidate must describe the same
  /// entity roster as the primary. Replaces (abandons) any previous
  /// candidate. The primary response path is unaffected.
  void install_candidate(ServingModel model);

  /// Generation of the staged candidate, or 0 when none is staged.
  std::uint64_t candidate_generation() const;

  /// Promotes the candidate to primary (the atomic swap_model publication).
  /// `generation` 0 targets whatever candidate is staged; a non-zero
  /// generation must match the staged candidate (PreconditionError when a
  /// different candidate is staged). Returns false — retry-safely — when
  /// no candidate is staged (e.g. a duplicate Promote after success).
  bool promote_candidate(std::uint64_t generation = 0);

  /// Drops the candidate without touching the primary. Same generation
  /// addressing and idempotency contract as promote_candidate().
  bool rollback_candidate(std::uint64_t generation = 0);

  /// Snapshot of the canary tracker's metrics (Stats gauges, tests).
  CanaryMetrics canary_metrics() const;

  /// Scores one request (all its windows batch through one predict_batch
  /// and one detector score_batch).
  ScoreResponse score(const ScoreRequest& request) const;

  /// Scores concurrent requests: windows are regrouped per entity so each
  /// entity's forecaster sees one batch, and entities shard across the
  /// pool. Response i corresponds to requests[i]. Throws
  /// common::PreconditionError on an unknown entity, a window whose
  /// channel count disagrees with the bundle's spec, or a window whose
  /// row count violates the bundle detector's own geometry (MAD-GAN
  /// consumes fixed-seq_len windows; sample-level detectors accept any
  /// length >= 1).
  std::vector<ScoreResponse> score_batch(std::span<const ScoreRequest> requests) const;

  /// Scores zero-copy column-store windows for one entity (the ScoreLatest
  /// path: the daemon cuts WindowViews over its ColumnStore and scores them
  /// without ever materializing data::Window copies upstream). Each view is
  /// gathered exactly once into a scratch matrix — the single copy on this
  /// path — then runs the same scoring core as score()/score_batch(), so
  /// verdicts are bitwise-identical to a Score request carrying the same
  /// window bytes. The observer (if any) sees a request with the entity
  /// name and NO windows: the store owns the bytes, and the adaptive
  /// controller's feedback tap only consumes the response.
  ScoreResponse score_views(const std::string& entity,
                            std::span<const data::WindowView> views) const;

 private:
  /// One published bundle generation: the model plus its O(1) routing index,
  /// immutable after construction so readers need no lock.
  struct Snapshot {
    explicit Snapshot(ServingModel m);
    ServingModel model;
    std::unordered_map<std::string, std::size_t> entity_lookup;
  };

  std::shared_ptr<const Snapshot> snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  /// Shadow-scores one already-scored entity batch against the candidate
  /// and folds the verdict deltas into the tracker; applies any resulting
  /// policy decision. No-op when no canary is armed. Never throws — a
  /// candidate failure is counted, the primary response is already final.
  void mirror_one(const std::string& entity,
                  std::span<const nn::Matrix* const> features,
                  std::span<const data::Regime> regimes,
                  const ScoreResponse& primary) const;
  void mirror_scored(std::span<const ScoreRequest> requests,
                     std::span<const ScoreResponse> responses) const;

  /// Shared promote/rollback resolution (manual frames and tracker
  /// decisions). `epoch` pins a tracker decision to the epoch it was made
  /// in so a stale auto decision can never fire after a manual override.
  bool resolve_candidate(bool promote, std::uint64_t generation,
                         std::optional<std::uint64_t> epoch, bool automatic);

  void emit_canary_event(const CanaryEvent& event) const;

  std::atomic<std::shared_ptr<const Snapshot>> snapshot_;
  std::atomic<std::shared_ptr<const Snapshot>> candidate_;
  std::atomic<std::shared_ptr<const ScoreObserver>> observer_;
  std::atomic<std::shared_ptr<const CanaryObserver>> canary_observer_;
  /// Serializes candidate lifecycle transitions (install/promote/rollback).
  /// Scoring and mirroring never take it.
  mutable std::mutex canary_mutex_;
  mutable CanaryTracker tracker_;
  std::unique_ptr<common::ThreadPool> pool_;
  nn::Precision precision_ = nn::Precision::kDouble;
};

}  // namespace goodones::serve
