#include "serve/frame_server.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/metrics.hpp"

namespace goodones::serve {

FrameServer::FrameServer(FrameServerConfig config) : config_(std::move(config)) {
  GO_EXPECTS(!config_.listen.empty());
  GO_EXPECTS(config_.accept_poll_ms > 0);
}

FrameServer::~FrameServer() {
  // Subclass destructors must call stop() themselves (dispatch() may run
  // on a connection thread while the subclass is being destroyed
  // otherwise); this is the backstop for subclasses that never started.
  stop();
}

std::string FrameServer::counter(const char* name) const {
  return config_.counter_prefix + "." + name;
}

const common::Endpoint& FrameServer::endpoint() const noexcept {
  return listener_ ? listener_->endpoint() : config_.listen;
}

void FrameServer::start() {
  GO_EXPECTS(!running_.load());
  GO_EXPECTS(!accept_thread_.joinable());
  {
    // One lifecycle per server: restarting after stop() would leave the
    // teardown latch set and every later stop() a no-op.
    const std::lock_guard<std::mutex> teardown(teardown_mutex_);
    GO_EXPECTS(!stopped_after_teardown_);
  }
  listener_ = common::make_listener(config_.listen);
  running_.store(true);
  accept_thread_ = std::thread([this] { accept_loop(); });
  on_started();
}

void FrameServer::request_stop() {
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    stop_requested_.store(true);
  }
  stop_cv_.notify_all();
}

void FrameServer::wait() {
  {
    std::unique_lock<std::mutex> lock(state_mutex_);
    stop_cv_.wait(lock, [this] { return stop_requested_.load() || stopped_; });
  }
  stop();
}

void FrameServer::stop() {
  request_stop();
  // Serialize teardown (wait() and an explicit stop() may race).
  const std::lock_guard<std::mutex> teardown(teardown_mutex_);
  if (stopped_after_teardown_) return;
  stopped_after_teardown_ = true;

  if (accept_thread_.joinable()) accept_thread_.join();
  if (listener_) listener_->close();
  // Drain: half-close each live connection's read side. A handler busy
  // serving finishes and flushes its in-flight response (writes still
  // flow), then observes EOF on its next read and exits.
  // After the accept thread joined, nothing mutates connections_.
  for (auto& connection : connections_) connection->socket->shutdown_read();
  for (auto& connection : connections_) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  connections_.clear();
  on_stopping();
  running_.store(false);
  {
    const std::lock_guard<std::mutex> lock(state_mutex_);
    stopped_ = true;
  }
  stop_cv_.notify_all();
  common::log_info(config_.counter_prefix, " stopped (", config_.listen.to_string(), ")");
}

void FrameServer::accept_loop() {
  while (!stop_requested_.load()) {
    common::Socket socket;
    try {
      socket = listener_->accept(config_.accept_poll_ms);
      if (socket.valid() && config_.send_timeout_ms > 0) {
        socket.set_send_timeout_ms(config_.send_timeout_ms);
      }
    } catch (const std::exception& error) {
      // Transient accept failures (fd exhaustion above all) must never
      // escape the thread (std::terminate); back off and keep serving the
      // connections that already exist.
      core::counters().add(counter("accept_failures"), 1);
      common::log_warn(config_.counter_prefix, " accept failed (backing off): ",
                       error.what());
      std::this_thread::sleep_for(std::chrono::milliseconds(config_.accept_poll_ms));
      reap_finished_connections();
      continue;
    }
    reap_finished_connections();
    if (!socket.valid()) continue;
    core::counters().add(counter("connections"), 1);
    auto connection = std::make_unique<Connection>();
    connection->socket = std::make_shared<common::Socket>(std::move(socket));
    Connection& ref = *connection;
    {
      const std::lock_guard<std::mutex> lock(state_mutex_);
      connections_.push_back(std::move(connection));
    }
    ref.thread = std::thread([this, &ref] { handle_connection(ref); });
  }
}

void FrameServer::reap_finished_connections() {
  const std::lock_guard<std::mutex> lock(state_mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load()) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void FrameServer::handle_connection(Connection& connection) {
  common::Socket& socket = *connection.socket;
  try {
    for (;;) {
      std::optional<wire::Frame> frame;
      try {
        frame = wire::recv_frame(socket);
      } catch (const wire::ProtocolVersionError& error) {
        core::counters().add(counter("malformed_frames"), 1);
        send_error(socket, wire::ErrorCode::kUnsupportedVersion, error.what());
        break;  // the peer speaks a different protocol revision
      } catch (const common::SerializationError& error) {
        core::counters().add(counter("malformed_frames"), 1);
        send_error(socket, wire::ErrorCode::kMalformedFrame, error.what());
        break;  // after a corrupt header the stream offset is untrustworthy
      }
      if (!frame) break;  // clean EOF between frames
      core::counters().add(counter("frames"), 1);
      if (!dispatch(socket, *frame)) break;
    }
  } catch (const common::SocketError& error) {
    common::log_debug(config_.counter_prefix, " connection dropped: ", error.what());
  } catch (const std::exception& error) {
    common::log_warn(config_.counter_prefix, " connection handler failed: ", error.what());
  }
  // The socket is NOT closed here: stop() may call shutdown_read() on it
  // concurrently, and Socket::fd_ is unsynchronized. The fd closes when the
  // connection is reaped (next accept tick) or at teardown — both after
  // this thread is joined.
  connection.done.store(true);
}

void FrameServer::send_error(common::Socket& socket, wire::ErrorCode code,
                             const std::string& message) noexcept {
  core::counters().add(counter("error_frames"), 1);
  try {
    wire::ErrorFrame error;
    error.code = code;
    error.message = message;
    wire::send_frame(socket, wire::MessageType::kError, wire::encode_error(error));
  } catch (const std::exception&) {
    // Best-effort: the peer may already be gone.
  }
}

}  // namespace goodones::serve
