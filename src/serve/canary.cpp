#include "serve/canary.hpp"

#include <cmath>
#include <cstddef>

#include "common/rng.hpp"
#include "risk/profile.hpp"

namespace goodones::serve {

namespace {

/// FNV-1a over the entity name: a stable, platform-independent stream key
/// (std::hash is not specified across implementations, and the mirrored
/// subset must be reproducible everywhere the same stream is replayed).
std::uint64_t entity_stream_key(std::string_view entity) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : entity) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

constexpr std::uint64_t kSampleDomain = 1000000;

}  // namespace

double CanaryClusterMetrics::primary_flag_rate() const {
  if (mirrored_windows == 0) return 0.0;
  return static_cast<double>(primary_flags) / static_cast<double>(mirrored_windows);
}

double CanaryClusterMetrics::candidate_flag_rate() const {
  if (mirrored_windows == 0) return 0.0;
  return static_cast<double>(candidate_flags) / static_cast<double>(mirrored_windows);
}

double CanaryClusterMetrics::flag_rate_delta() const {
  return candidate_flag_rate() - primary_flag_rate();
}

double CanaryClusterMetrics::risk_distance() const {
  return risk::distribution_distance(primary_risks, candidate_risks);
}

CanaryTracker::CanaryTracker(CanaryPolicy policy) : policy_(policy) {}

std::uint64_t CanaryTracker::install(std::uint64_t candidate_generation) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t epoch = metrics_.epoch + 1;
  metrics_ = CanaryMetrics{};
  metrics_.epoch = epoch;
  metrics_.state = CanaryState::kMirroring;
  metrics_.candidate_generation = candidate_generation;
  decided_ = false;
  // Sampling sequences restart with the epoch so every candidate is
  // measured against the same deterministic subset of an identical stream.
  entity_seq_.clear();
  armed_.store(true, std::memory_order_release);
  return epoch;
}

std::optional<std::uint64_t> CanaryTracker::begin_mirror(std::string_view entity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (metrics_.state != CanaryState::kMirroring) return std::nullopt;
  const std::uint64_t seq = entity_seq_[std::string(entity)]++;
  // One splitmix64 step seeded by (entity key, sequence): a fixed (entity,
  // seq) pair always lands on the same side of the sampling threshold.
  std::uint64_t state = entity_stream_key(entity) ^ (seq * 0x9E3779B97F4A7C15ULL);
  const std::uint64_t draw = common::splitmix64_next(state);
  if (draw % kSampleDomain >= policy_.sample_per_million) return std::nullopt;
  return metrics_.epoch;
}

CanaryTracker::AccumulateResult CanaryTracker::accumulate(
    std::uint64_t epoch, std::span<const WindowDelta> deltas) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (metrics_.state != CanaryState::kMirroring || epoch != metrics_.epoch) {
    return {};
  }
  metrics_.mirrored_requests += 1;
  metrics_.mirrored_windows += deltas.size();
  for (const WindowDelta& delta : deltas) {
    CanaryClusterMetrics& cluster =
        metrics_.clusters[static_cast<std::size_t>(delta.cluster)];
    cluster.mirrored_windows += 1;
    cluster.primary_flags += delta.primary_flagged ? 1 : 0;
    cluster.candidate_flags += delta.candidate_flagged ? 1 : 0;
    cluster.state_flips += delta.state_flip ? 1 : 0;
    if (cluster.primary_risks.size() < policy_.max_risk_samples_per_cluster) {
      cluster.primary_risks.push_back(delta.primary_risk);
      cluster.candidate_risks.push_back(delta.candidate_risk);
    } else {
      cluster.dropped_risk_samples += 1;
    }
  }
  AccumulateResult result;
  result.accepted = true;
  if (policy_.auto_decide && !decided_) result.decision = evaluate_locked();
  return result;
}

std::optional<CanaryDecision> CanaryTracker::evaluate_locked() {
  if (metrics_.mirrored_windows < policy_.min_mirrored_windows) return std::nullopt;
  metrics_.evaluations += 1;
  bool breach = false;
  for (const CanaryClusterMetrics& cluster : metrics_.clusters) {
    if (cluster.mirrored_windows == 0) continue;
    if (std::abs(cluster.flag_rate_delta()) > policy_.max_flag_rate_delta) breach = true;
    if (policy_.max_risk_distance > 0.0 &&
        cluster.risk_distance() > policy_.max_risk_distance) {
      breach = true;
    }
  }
  if (breach) {
    metrics_.breach_streak += 1;
    if (metrics_.breach_streak < policy_.breach_strikes) return std::nullopt;
    decided_ = true;
    return CanaryDecision::kRollback;
  }
  metrics_.breach_streak = 0;
  decided_ = true;
  return CanaryDecision::kPromote;
}

bool CanaryTracker::finish(std::uint64_t epoch) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (metrics_.state != CanaryState::kMirroring || epoch != metrics_.epoch) {
    return false;
  }
  metrics_.state = CanaryState::kIdle;
  armed_.store(false, std::memory_order_release);
  return true;
}

CanaryState CanaryTracker::state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.state;
}

std::uint64_t CanaryTracker::epoch() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.epoch;
}

std::uint64_t CanaryTracker::candidate_generation() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return metrics_.candidate_generation;
}

CanaryMetrics CanaryTracker::metrics() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return metrics_;
}

}  // namespace goodones::serve
