#include "serve/router.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "common/error.hpp"
#include "common/logging.hpp"
#include "core/metrics.hpp"

namespace goodones::serve {

namespace {

FrameServerConfig server_config_of(const RouterConfig& config) {
  FrameServerConfig server;
  server.listen = config.listen;
  server.accept_poll_ms = config.accept_poll_ms;
  server.send_timeout_ms = config.send_timeout_ms;
  server.counter_prefix = "serve.router";
  return server;
}

wire::FrameChannelConfig probe_config_of(const RouterConfig& config) {
  // The prober must FAIL fast, not mask outages: one dial attempt, no
  // reconnect-and-replay, and a bounded receive timeout so a wedged shard
  // (accepting but silent) flips unhealthy instead of wedging the prober.
  wire::FrameChannelConfig probe;
  probe.reconnect = false;
  probe.backoff.max_attempts = 1;
  probe.recv_timeout_ms = config.health_timeout_ms;
  return probe;
}

}  // namespace

Router::Backend::Backend(const RouterBackendSpec& spec,
                         const wire::FrameChannelConfig& forward, std::size_t pool_size,
                         const wire::FrameChannelConfig& probe_config)
    : name(spec.name),
      endpoint(spec.endpoint),
      pool(spec.endpoint, forward, pool_size),
      probe(spec.endpoint, probe_config) {}

class Router::InFlightGuard {
 public:
  InFlightGuard(Router& router, Backend& backend) : router_(router), backend_(backend) {}
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;
  ~InFlightGuard() {
    if (backend_.in_flight.fetch_sub(1) == 1 && backend_.draining.load()) {
      // A drain may be blocked on us; the lock pairs with its wait so the
      // notify cannot slip between its predicate check and its sleep.
      const std::lock_guard<std::mutex> lock(router_.drain_mutex_);
      router_.drain_cv_.notify_all();
    }
  }

 private:
  Router& router_;
  Backend& backend_;
};

Router::Router(RouterConfig config)
    : FrameServer(server_config_of(config)),
      config_(std::move(config)),
      ring_(config_.vnodes) {
  GO_EXPECTS(!config_.backends.empty());
  const wire::FrameChannelConfig probe = probe_config_of(config_);
  for (const RouterBackendSpec& spec : config_.backends) {
    GO_EXPECTS(!spec.name.empty());
    GO_EXPECTS(!spec.endpoint.empty());
    ring_.add(spec.name);  // throws PreconditionError on duplicate names
    backends_.push_back(
        std::make_unique<Backend>(spec, config_.forward, config_.pool_size, probe));
  }
}

Router::~Router() { stop(); }

void Router::on_started() {
  common::log_info("router listening on ", endpoint().to_string(), " (",
                   backends_.size(), " shards, ", config_.vnodes, " vnodes)");
  if (config_.health_interval_ms > 0) {
    {
      const std::lock_guard<std::mutex> lock(prober_mutex_);
      prober_stop_ = false;
    }
    prober_ = std::thread([this] { probe_loop(); });
  }
}

void Router::on_stopping() {
  {
    const std::lock_guard<std::mutex> lock(prober_mutex_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

std::string Router::shard_for(std::string_view entity) const {
  const std::lock_guard<std::mutex> lock(ring_mutex_);
  return ring_.owner(entity);
}

std::vector<ShardStatus> Router::shards() const {
  std::vector<ShardStatus> out;
  out.reserve(backends_.size());
  for (const auto& backend : backends_) {
    ShardStatus status;
    status.name = backend->name;
    status.endpoint = backend->endpoint;
    status.healthy = backend->healthy.load();
    status.draining = backend->draining.load();
    status.generation = backend->generation.load();
    status.in_flight = backend->in_flight.load();
    status.reconnects = backend->pool.reconnects();
    out.push_back(std::move(status));
  }
  return out;
}

Router::Backend* Router::acquire_backend(std::string_view entity, std::string& owner_out) {
  // Owner lookup and in_flight++ must be one atomic step against drain():
  // drain removes the shard from the ring under this same mutex BEFORE
  // waiting for in-flight forwards, so either this request incremented
  // first (drain waits for it) or the removed shard can no longer be
  // picked. No forward ever runs on a shard whose pool a drain is closing.
  const std::lock_guard<std::mutex> lock(ring_mutex_);
  owner_out = ring_.owner(entity);
  for (const auto& backend : backends_) {
    if (backend->name == owner_out) {
      backend->in_flight.fetch_add(1);
      return backend.get();
    }
  }
  throw common::PreconditionError("router: ring names unknown shard: " + owner_out);
}

bool Router::drain(const std::string& shard) {
  Backend* backend = nullptr;
  {
    const std::lock_guard<std::mutex> lock(ring_mutex_);
    if (!ring_.remove(shard)) return false;
    for (const auto& candidate : backends_) {
      if (candidate->name == shard) {
        backend = candidate.get();
        break;
      }
    }
  }
  GO_EXPECTS(backend != nullptr);  // ring names are a subset of backends_
  backend->draining.store(true);
  {
    std::unique_lock<std::mutex> lock(drain_mutex_);
    drain_cv_.wait(lock, [backend] { return backend->in_flight.load() == 0; });
  }
  backend->pool.close_connections();
  core::counters().add("serve.router.drains", 1);
  common::log_info("router drained shard ", shard);
  return true;
}

void Router::handle_entity_forward(common::Socket& socket, const wire::Frame& frame,
                                   bool retryable) {
  std::string entity;
  try {
    entity = wire::peek_score_entity(frame.payload);
  } catch (const common::SerializationError& error) {
    core::counters().add("serve.router.malformed_frames", 1);
    send_error(socket, wire::ErrorCode::kMalformedFrame, error.what());
    return;
  }
  std::string owner;
  Backend* backend = nullptr;
  try {
    backend = acquire_backend(entity, owner);
  } catch (const common::PreconditionError& error) {
    // Empty ring (everything drained) — nothing can own this entity.
    send_error(socket, wire::ErrorCode::kUnavailable, error.what());
    return;
  }
  const InFlightGuard guard(*this, *backend);
  wire::Frame reply;
  try {
    const wire::ChannelPool::Lease channel = backend->pool.acquire();
    reply = channel->roundtrip(frame.type, frame.payload, retryable);
  } catch (const common::SocketError& error) {
    // The owner stayed unreachable through every reconnect round. Its
    // entities have no other home (shards own their slices), so this is a
    // typed Unavailable to the client — who may simply retry later.
    core::counters().add("serve.router.forward_failures", 1);
    backend->healthy.store(false);
    send_error(socket, wire::ErrorCode::kUnavailable,
               "shard '" + owner + "' unreachable: " + error.what());
    return;
  }
  // Relay verbatim — reply bytes untouched (the bitwise guarantee for
  // kScoreReply/kScoreLatestReply), and a shard-side Error frame passes
  // through as-is too.
  wire::send_frame(socket, reply.type, reply.payload);
  core::counters().add("serve.router.forwards", 1);
}

void Router::handle_stats(common::Socket& socket) {
  wire::StatsSnapshot stats = core::counters().snapshot();
  std::uint64_t on_ring = 0;
  for (const auto& backend : backends_) {
    const std::string prefix = "serve.router.shard." + backend->name + ".";
    const bool draining = backend->draining.load();
    if (!draining) ++on_ring;
    stats.emplace_back(prefix + "healthy", backend->healthy.load() ? 1 : 0);
    stats.emplace_back(prefix + "draining", draining ? 1 : 0);
    stats.emplace_back(prefix + "generation", backend->generation.load());
    stats.emplace_back(prefix + "in_flight", backend->in_flight.load());
    stats.emplace_back(prefix + "reconnects", backend->pool.reconnects());
  }
  stats.emplace_back("serve.router.shards", on_ring);
  wire::send_frame(socket, wire::MessageType::kStatsReply, wire::encode_stats(stats));
}

void Router::handle_health(common::Socket& socket) {
  // The router is healthy iff it can answer; its generation is the max a
  // healthy shard serves (what the last probe/refresh learned).
  wire::HealthReply reply;
  for (const auto& backend : backends_) {
    if (backend->healthy.load() && !backend->draining.load()) {
      reply.generation = std::max(reply.generation, backend->generation.load());
    }
  }
  wire::send_frame(socket, wire::MessageType::kHealthReply,
                   wire::encode_health_reply(reply));
}

void Router::handle_refresh(common::Socket& socket) {
  // Broadcast, best-effort per shard: a refresh must not fail wholesale
  // because one shard is mid-restart. Reply aggregates the successes.
  wire::RefreshReply aggregate;
  std::size_t reached = 0;
  std::size_t attempted = 0;
  for (const auto& backend : backends_) {
    if (backend->draining.load()) continue;
    ++attempted;
    try {
      const wire::ChannelPool::Lease channel = backend->pool.acquire();
      const wire::Frame reply =
          channel->roundtrip(wire::MessageType::kRefresh, {}, /*retryable=*/true);
      if (reply.type != wire::MessageType::kRefreshReply) continue;
      const wire::RefreshReply decoded = wire::decode_refresh_reply(reply.payload);
      aggregate.refreshed = aggregate.refreshed || decoded.refreshed;
      aggregate.generation = std::max(aggregate.generation, decoded.generation);
      backend->generation.store(decoded.generation);
      ++reached;
    } catch (const std::exception& error) {
      core::counters().add("serve.router.refresh_failures", 1);
      common::log_warn("router: refresh of shard ", backend->name,
                       " failed: ", error.what());
    }
  }
  if (reached == 0 && attempted > 0) {
    send_error(socket, wire::ErrorCode::kUnavailable,
               "refresh reached no shard (all unreachable)");
    return;
  }
  wire::send_frame(socket, wire::MessageType::kRefreshReply,
                   wire::encode_refresh_reply(aggregate));
}

void Router::handle_canary_admin(common::Socket& socket, const wire::Frame& frame) {
  const bool promote = frame.type == wire::MessageType::kPromote;
  const wire::MessageType reply_type =
      promote ? wire::MessageType::kPromoteReply : wire::MessageType::kRollbackReply;
  // Broadcast like Refresh: canary staging happens per shard, and the
  // operator addressing the mesh means "resolve the canary wherever one is
  // staged". The payload is relayed verbatim so an explicit generation
  // keeps its exactly-once meaning end to end.
  bool applied = false;
  std::uint64_t generation = 0;
  std::size_t reached = 0;
  std::size_t attempted = 0;
  std::string refusal;
  for (const auto& backend : backends_) {
    if (backend->draining.load()) continue;
    ++attempted;
    try {
      const wire::ChannelPool::Lease channel = backend->pool.acquire();
      const wire::Frame reply =
          channel->roundtrip(frame.type, frame.payload, /*retryable=*/true);
      if (reply.type == wire::MessageType::kError) {
        // A shard with no (or a different) staged candidate refuses with a
        // typed BadRequest — expected under broadcast; remember the reason
        // in case EVERY shard refuses.
        const wire::ErrorFrame error = wire::decode_error(reply.payload);
        refusal = "shard '" + backend->name + "': " + error.message;
        ++reached;
        continue;
      }
      if (reply.type != reply_type) continue;
      bool shard_applied = false;
      std::uint64_t shard_generation = 0;
      if (promote) {
        const wire::PromoteReply decoded = wire::decode_promote_reply(reply.payload);
        shard_applied = decoded.applied;
        shard_generation = decoded.generation;
      } else {
        const wire::RollbackReply decoded = wire::decode_rollback_reply(reply.payload);
        shard_applied = decoded.applied;
        shard_generation = decoded.generation;
      }
      applied = applied || shard_applied;
      generation = std::max(generation, shard_generation);
      backend->generation.store(shard_generation);
      ++reached;
    } catch (const std::exception& error) {
      core::counters().add(promote ? "serve.router.promote_failures"
                                   : "serve.router.rollback_failures",
                           1);
      common::log_warn("router: ", promote ? "promote" : "rollback", " of shard ",
                       backend->name, " failed: ", error.what());
    }
  }
  if (reached == 0 && attempted > 0) {
    send_error(socket, wire::ErrorCode::kUnavailable,
               std::string(promote ? "promote" : "rollback") +
                   " reached no shard (all unreachable)");
    return;
  }
  if (!applied && !refusal.empty()) {
    // Every reachable shard refused — surface the last refusal typed, so a
    // mistyped generation fails loudly instead of reading as a silent no-op.
    send_error(socket, wire::ErrorCode::kBadRequest, refusal);
    return;
  }
  if (promote) {
    wire::PromoteReply aggregate;
    aggregate.applied = applied;
    aggregate.generation = generation;
    wire::send_frame(socket, wire::MessageType::kPromoteReply,
                     wire::encode_promote_reply(aggregate));
  } else {
    wire::RollbackReply aggregate;
    aggregate.applied = applied;
    aggregate.generation = generation;
    wire::send_frame(socket, wire::MessageType::kRollbackReply,
                     wire::encode_rollback_reply(aggregate));
  }
}

void Router::handle_drain(common::Socket& socket, const wire::Frame& frame) {
  wire::DrainRequest request;
  try {
    request = wire::decode_drain_request(frame.payload);
  } catch (const common::SerializationError& error) {
    core::counters().add("serve.router.malformed_frames", 1);
    send_error(socket, wire::ErrorCode::kMalformedFrame, error.what());
    return;
  }
  wire::DrainReply reply;
  reply.drained = drain(request.shard);
  reply.message = reply.drained ? "shard '" + request.shard + "' drained"
                                : "no shard '" + request.shard + "' on the ring";
  wire::send_frame(socket, wire::MessageType::kDrainReply,
                   wire::encode_drain_reply(reply));
}

bool Router::dispatch(common::Socket& socket, const wire::Frame& frame) {
  switch (frame.type) {
    case wire::MessageType::kScore:
    case wire::MessageType::kScoreLatest:
      handle_entity_forward(socket, frame, /*retryable=*/true);
      return true;
    case wire::MessageType::kIngest:
      // Appends are not idempotent — never replayed by the forward channel.
      handle_entity_forward(socket, frame, /*retryable=*/false);
      return true;
    case wire::MessageType::kStats:
      handle_stats(socket);
      return true;
    case wire::MessageType::kHealth:
      handle_health(socket);
      return true;
    case wire::MessageType::kRefresh:
      handle_refresh(socket);
      return true;
    case wire::MessageType::kPromote:
    case wire::MessageType::kRollback:
      handle_canary_admin(socket, frame);
      return true;
    case wire::MessageType::kDrain:
      handle_drain(socket, frame);
      return true;
    case wire::MessageType::kShutdown:
      wire::send_frame(socket, wire::MessageType::kShutdownReply, {});
      request_stop();
      return false;
    default:
      send_error(socket, wire::ErrorCode::kBadRequest,
                 std::string("unexpected message type at the router: ") +
                     wire::to_string(frame.type));
      return true;
  }
}

void Router::probe_loop() {
  const auto interval = std::chrono::milliseconds(config_.health_interval_ms);
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(prober_mutex_);
      if (prober_cv_.wait_for(lock, interval, [this] { return prober_stop_; })) return;
    }
    for (const auto& backend : backends_) {
      if (backend->draining.load()) continue;
      const bool was_healthy = backend->healthy.load();
      try {
        const wire::Frame reply =
            backend->probe.roundtrip(wire::MessageType::kHealth, {}, /*retryable=*/false);
        if (reply.type != wire::MessageType::kHealthReply) {
          throw common::SerializationError(
              std::string("probe got ") + wire::to_string(reply.type));
        }
        const wire::HealthReply health = wire::decode_health_reply(reply.payload);
        backend->generation.store(health.generation);
        backend->healthy.store(true);
        if (!was_healthy) {
          common::log_info("router: shard ", backend->name, " healthy (generation ",
                           health.generation, ")");
        }
      } catch (const std::exception& error) {
        backend->probe.close();
        backend->healthy.store(false);
        core::counters().add("serve.router.probe_failures", 1);
        if (was_healthy) {
          common::log_warn("router: shard ", backend->name, " unhealthy: ", error.what());
        }
      }
    }
  }
}

}  // namespace goodones::serve
