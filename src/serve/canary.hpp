// Canary state for shadow-scored candidate generations.
//
// When the adaptive loop rebuilds a bundle it no longer has to trust the
// rebuild blindly: the new generation enters as a *candidate* that shadow-
// scores a deterministic sample of live traffic while the primary keeps
// answering every request. CanaryTracker owns everything about that
// evaluation that is not the scoring itself:
//
//   * the sampling decision — keyed by splitmix64 over (entity name, the
//     entity's request sequence number), never wall clock, so two identical
//     request streams mirror identical subsets (replayable canaries);
//   * the verdict-delta metrics, grouped by the PRIMARY's cluster routing:
//     flag-rate drift, state-flip counts, and paired risk samples feeding
//     risk::distribution_distance (1-D Wasserstein). All metrics are either
//     exact integer counters or computed on demand over sorted sample
//     copies, so the numbers are independent of the order in which
//     concurrent scoring threads accumulated them — a single-threaded
//     recomputation of the same mirrored set matches bitwise;
//   * the promote/rollback policy: once at least min_mirrored_windows have
//     been shadow-scored, every further accumulation evaluates the deltas;
//     breach_strikes consecutive breaching evaluations decide kRollback,
//     the first clean evaluation decides kPromote. The tracker only ever
//     *returns* a decision — acting on it (swapping snapshots) is the
//     ScoringService's job — and it decides at most once per epoch;
//   * the epoch lifecycle: install() arms a new epoch and resets state,
//     finish() disarms it exactly once (the double-promote guard), and
//     accumulate()/begin_mirror() reject anything stale, so no window is
//     ever mirrored or counted after a rollback.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "serve/model_registry.hpp"

namespace goodones::serve {

struct CanaryPolicy {
  /// Mirroring sample rate in parts per million (100000 = 10% of requests).
  std::uint64_t sample_per_million = 100000;
  /// Evidence gate: no auto decision before this many mirrored windows.
  std::uint64_t min_mirrored_windows = 256;
  /// Breach when any cluster's |candidate - primary| flag rate exceeds this.
  double max_flag_rate_delta = 0.1;
  /// Breach when any cluster's risk-distribution distance exceeds this
  /// (0 = risk-distance breaches disabled; flag-rate drift still applies).
  double max_risk_distance = 0.0;
  /// Consecutive breaching evaluations before the tracker decides rollback.
  std::uint64_t breach_strikes = 3;
  /// When false the tracker only accumulates; promote/rollback is manual.
  bool auto_decide = true;
  /// Cap on stored risk-sample pairs per cluster (overflow is counted, not
  /// silently ignored). Bounds tracker memory under long canaries.
  std::size_t max_risk_samples_per_cluster = 65536;
};

enum class CanaryState : std::uint8_t { kIdle = 0, kMirroring = 1 };
enum class CanaryDecision : std::uint8_t { kPromote = 0, kRollback = 1 };

/// Primary-vs-candidate verdict delta for one mirrored window.
struct WindowDelta {
  Cluster cluster = Cluster::kLessVulnerable;  ///< primary's routing
  bool primary_flagged = false;
  bool candidate_flagged = false;
  bool state_flip = false;  ///< candidate predicted_state != primary's
  double primary_risk = 0.0;
  double candidate_risk = 0.0;
};

/// Per-cluster accumulation. Counters are exact; rates/distances are
/// derived on demand (over sorted copies), so accumulation order and
/// thread interleaving cannot change any reported number.
struct CanaryClusterMetrics {
  std::uint64_t mirrored_windows = 0;
  std::uint64_t primary_flags = 0;
  std::uint64_t candidate_flags = 0;
  std::uint64_t state_flips = 0;
  std::uint64_t dropped_risk_samples = 0;  ///< pairs past the storage cap
  std::vector<double> primary_risks;
  std::vector<double> candidate_risks;

  double primary_flag_rate() const;
  double candidate_flag_rate() const;
  /// Signed candidate-minus-primary flag-rate drift.
  double flag_rate_delta() const;
  /// risk::distribution_distance over the stored sample pairs.
  double risk_distance() const;
};

struct CanaryMetrics {
  std::uint64_t epoch = 0;
  CanaryState state = CanaryState::kIdle;
  std::uint64_t candidate_generation = 0;
  std::uint64_t mirrored_requests = 0;
  std::uint64_t mirrored_windows = 0;
  std::uint64_t evaluations = 0;
  std::uint64_t breach_streak = 0;
  /// Indexed by Cluster value (kLessVulnerable = 0, kMoreVulnerable = 1).
  std::array<CanaryClusterMetrics, 2> clusters;
};

class CanaryTracker {
 public:
  struct AccumulateResult {
    bool accepted = false;  ///< false: stale epoch or not mirroring
    std::optional<CanaryDecision> decision;
  };

  explicit CanaryTracker(CanaryPolicy policy = {});

  const CanaryPolicy& policy() const { return policy_; }

  /// Arms a new canary epoch for `candidate_generation`: bumps the epoch,
  /// resets all metrics and per-entity sampling sequences, and starts
  /// mirroring. Returns the new epoch. Any previous epoch is abandoned.
  std::uint64_t install(std::uint64_t candidate_generation);

  /// The per-request sampling decision. Returns the current epoch when the
  /// request should be mirrored, nullopt when idle or not sampled. The
  /// draw is splitmix64 over (FNV-1a of the entity name, that entity's
  /// own request sequence number) — deterministic per stream, never time.
  std::optional<std::uint64_t> begin_mirror(std::string_view entity);

  /// Folds one mirrored request's window deltas. Rejects stale epochs and
  /// anything after finish() (accepted = false), so no sample leaks across
  /// a promote/rollback boundary. May return the policy's decision — at
  /// most once per epoch.
  AccumulateResult accumulate(std::uint64_t epoch,
                              std::span<const WindowDelta> deltas);

  /// Ends the given epoch exactly once: returns true for the first caller
  /// with the live epoch, false ever after (and for stale epochs). This is
  /// the double-promote/double-rollback guard.
  bool finish(std::uint64_t epoch);

  /// Lock-free "is anything mirroring" probe for the scoring hot path.
  bool armed() const { return armed_.load(std::memory_order_acquire); }

  CanaryState state() const;
  std::uint64_t epoch() const;
  std::uint64_t candidate_generation() const;
  /// Snapshot of the current metrics (valid after finish() too, until the
  /// next install()).
  CanaryMetrics metrics() const;

 private:
  std::optional<CanaryDecision> evaluate_locked();

  CanaryPolicy policy_;
  std::atomic<bool> armed_{false};
  mutable std::mutex mutex_;
  CanaryMetrics metrics_;
  bool decided_ = false;
  std::unordered_map<std::string, std::uint64_t> entity_seq_;
};

}  // namespace goodones::serve
