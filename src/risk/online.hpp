// Online risk profiling — the adaptive extension the paper sketches in
// Appendix D and §V: "an iterative process that regularly reassesses
// patient risk profiles and continuously updates them as new data become
// available ... patients showing increased resilience are incorporated
// into the retraining process, while those becoming more vulnerable are
// excluded."
//
// The profiler maintains an exponentially-weighted risk level per victim;
// observe() folds in new attacked-window outcomes as they arrive (the
// defender's own simulation), observe_risks() folds in serving-time
// instantaneous risks (what serve::AdaptiveController feeds it from live
// ScoreResults), and reassess() re-derives the vulnerability partition. A
// hysteresis margin prevents victims near the boundary from oscillating
// between clusters on every batch. The full state round-trips through
// save()/load() so an adaptive serving loop resumes across restarts
// without re-observing history.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "attack/campaign.hpp"
#include "risk/schedule.hpp"

namespace goodones::risk {

struct OnlineProfilerConfig {
  /// Exponential forgetting factor per observation batch: 1 = never forget
  /// (levels converge to the cumulative mean of batch means), smaller =
  /// faster adaptation to regime changes.
  double decay = 0.9;
  /// Relative hysteresis around the cluster boundary: a victim switches
  /// groups only when its level crosses the boundary by this fraction.
  double hysteresis = 0.1;
  SeveritySchedule schedule = SeveritySchedule::paper_default();
};

class OnlineRiskProfiler {
 public:
  /// The current vulnerability partition (victim indices).
  struct Partition {
    std::vector<std::size_t> less_vulnerable;
    std::vector<std::size_t> more_vulnerable;
  };

  /// `victims` fixes the tracked population and its order (display names).
  OnlineRiskProfiler(std::vector<std::string> victims, OnlineProfilerConfig config);

  std::size_t num_victims() const noexcept { return levels_.size(); }

  /// Folds one batch of attacked-window outcomes for victim `index` into
  /// its exponentially-weighted risk level (log1p-compressed, matching the
  /// offline pipeline's clustering space). Empty batches are ignored.
  void observe(std::size_t index, const std::vector<attack::WindowOutcome>& outcomes);

  /// Folds one batch of already-computed instantaneous risks R_t (raw Eq.-1
  /// units, e.g. serve::WindowScore::risk) for victim `index`. This is the
  /// serving-time entry point: at test time there is no WindowOutcome, only
  /// the scored window's severity-weighted deviation. Same log1p
  /// compression and decay semantics as observe(); empty batches ignored.
  void observe_risks(std::size_t index, std::span<const double> risks);

  /// Current smoothed risk level of a victim (log1p space).
  double level(std::size_t index) const;

  /// Number of observation batches folded in for a victim.
  std::size_t batches(std::size_t index) const;

  /// Recomputes the vulnerability partition from current levels: the split
  /// point is the largest gap in sorted levels (the 1-D analogue of the
  /// offline dendrogram's max-gap cut), with hysteresis against the
  /// previous assignment. Requires at least one observed batch per victim.
  /// A single-victim population always lands in the less-vulnerable group.
  const Partition& reassess();

  /// Latest partition (empty before the first reassess()).
  const Partition& partition() const noexcept { return partition_; }

  const std::string& victim(std::size_t index) const;

  /// Persists the complete profiling state (victims, levels, batch counts,
  /// hysteresis memory) so a restarted controller resumes exactly where it
  /// left off. Tag-framed like the detector artifacts.
  void save(std::ostream& out) const;

  /// Restores state written by save(). Throws common::SerializationError on
  /// truncation, tag mismatch, or a victim roster that disagrees with this
  /// profiler's (the artifact must describe the same population), leaving
  /// the profiler untouched on failure.
  void load(std::istream& in);

 private:
  void fold_batch(std::size_t index, double batch_mean);

  OnlineProfilerConfig config_;
  std::vector<std::string> victims_;
  std::vector<double> levels_;
  std::vector<std::size_t> batch_counts_;
  std::vector<bool> currently_less_;  // hysteresis memory
  bool first_assessment_ = true;
  Partition partition_;
};

}  // namespace goodones::risk
