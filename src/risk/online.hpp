// Online risk profiling — the adaptive extension the paper sketches in
// Appendix D and §V: "an iterative process that regularly reassesses
// patient risk profiles and continuously updates them as new data become
// available ... patients showing increased resilience are incorporated
// into the retraining process, while those becoming more vulnerable are
// excluded."
//
// The profiler maintains an exponentially-weighted risk level per victim;
// observe() folds in new attacked-window outcomes as they arrive, and
// reassess() re-derives the vulnerability partition. A hysteresis margin
// prevents victims near the boundary from oscillating between clusters on
// every batch.
#pragma once

#include <cstdint>
#include <vector>

#include <string>

#include "attack/campaign.hpp"
#include "risk/schedule.hpp"

namespace goodones::risk {

struct OnlineProfilerConfig {
  /// Exponential forgetting factor per observation batch: 1 = never forget
  /// (cumulative mean), smaller = faster adaptation to regime changes.
  double decay = 0.9;
  /// Relative hysteresis around the cluster boundary: a victim switches
  /// groups only when its level crosses the boundary by this fraction.
  double hysteresis = 0.1;
  SeveritySchedule schedule = SeveritySchedule::paper_default();
};

class OnlineRiskProfiler {
 public:
  /// The current vulnerability partition (victim indices).
  struct Partition {
    std::vector<std::size_t> less_vulnerable;
    std::vector<std::size_t> more_vulnerable;
  };

  /// `victims` fixes the tracked population and its order (display names).
  OnlineRiskProfiler(std::vector<std::string> victims, OnlineProfilerConfig config);

  std::size_t num_victims() const noexcept { return levels_.size(); }

  /// Folds one batch of attacked-window outcomes for victim `index` into
  /// its exponentially-weighted risk level (log1p-compressed, matching the
  /// offline pipeline's clustering space). Empty batches are ignored.
  void observe(std::size_t index, const std::vector<attack::WindowOutcome>& outcomes);

  /// Current smoothed risk level of a victim (log1p space).
  double level(std::size_t index) const;

  /// Number of observation batches folded in for a victim.
  std::size_t batches(std::size_t index) const;

  /// Recomputes the vulnerability partition from current levels: the split
  /// point is the largest gap in sorted levels (the 1-D analogue of the
  /// offline dendrogram's max-gap cut), with hysteresis against the
  /// previous assignment. Requires at least one observed batch per victim.
  const Partition& reassess();

  /// Latest partition (empty before the first reassess()).
  const Partition& partition() const noexcept { return partition_; }

  const std::string& victim(std::size_t index) const;

 private:
  OnlineProfilerConfig config_;
  std::vector<std::string> victims_;
  std::vector<double> levels_;
  std::vector<std::size_t> batch_counts_;
  std::vector<bool> currently_less_;  // hysteresis memory
  bool first_assessment_ = true;
  Partition partition_;
};

}  // namespace goodones::risk
