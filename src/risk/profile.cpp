#include "risk/profile.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "risk/severity.hpp"

namespace goodones::risk {

double deviation_magnitude(double benign_prediction, double adversarial_prediction) noexcept {
  const double diff = benign_prediction - adversarial_prediction;
  return diff * diff;
}

double instantaneous_risk(const attack::WindowOutcome& outcome) noexcept {
  const double severity = severity_coefficient(outcome.benign_predicted_state,
                                               outcome.adversarial_predicted_state);
  const double z = deviation_magnitude(outcome.attack.benign_prediction,
                                       outcome.attack.adversarial_prediction);
  return severity * z;
}

double RiskProfile::mean() const noexcept {
  return common::mean(values);
}

double RiskProfile::peak() const noexcept {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

std::vector<double> RiskProfile::log_scaled() const {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = std::log1p(values[i]);
  return out;
}

RiskProfile build_profile(std::string name,
                          const std::vector<attack::WindowOutcome>& outcomes) {
  RiskProfile profile;
  profile.name = std::move(name);
  profile.values.reserve(outcomes.size());
  for (const auto& outcome : outcomes) {
    profile.values.push_back(instantaneous_risk(outcome));
  }
  return profile;
}

std::vector<RiskProfile> align_profiles(std::vector<RiskProfile> profiles) {
  GO_EXPECTS(!profiles.empty());
  std::size_t min_len = profiles.front().values.size();
  for (const auto& p : profiles) min_len = std::min(min_len, p.values.size());
  GO_EXPECTS(min_len > 0);
  for (auto& p : profiles) p.values.resize(min_len);
  return profiles;
}

}  // namespace goodones::risk
