#include "risk/profile.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "risk/severity.hpp"

namespace goodones::risk {

double deviation_magnitude(double benign_prediction, double adversarial_prediction) noexcept {
  const double diff = benign_prediction - adversarial_prediction;
  return diff * diff;
}

double instantaneous_risk(const attack::WindowOutcome& outcome) noexcept {
  const double severity = severity_coefficient(outcome.benign_predicted_state,
                                               outcome.adversarial_predicted_state);
  const double z = deviation_magnitude(outcome.attack.benign_prediction,
                                       outcome.attack.adversarial_prediction);
  return severity * z;
}

double RiskProfile::mean() const noexcept {
  return common::mean(values);
}

double RiskProfile::peak() const noexcept {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

std::vector<double> RiskProfile::log_scaled() const {
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) out[i] = std::log1p(values[i]);
  return out;
}

RiskProfile build_profile(std::string name,
                          const std::vector<attack::WindowOutcome>& outcomes) {
  RiskProfile profile;
  profile.name = std::move(name);
  profile.values.reserve(outcomes.size());
  for (const auto& outcome : outcomes) {
    profile.values.push_back(instantaneous_risk(outcome));
  }
  return profile;
}

double distribution_distance(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 0.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // Sweep the merged sample points left to right, integrating the gap
  // between the two empirical CDFs over each inter-sample interval.
  const double step_a = 1.0 / static_cast<double>(a.size());
  const double step_b = 1.0 / static_cast<double>(b.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  double cdf_a = 0.0;
  double cdf_b = 0.0;
  double prev = std::min(a.front(), b.front());
  double distance = 0.0;
  while (ia < a.size() || ib < b.size()) {
    const double next = (ib == b.size() || (ia < a.size() && a[ia] <= b[ib])) ? a[ia] : b[ib];
    distance += std::abs(cdf_a - cdf_b) * (next - prev);
    while (ia < a.size() && a[ia] == next) {
      cdf_a += step_a;
      ++ia;
    }
    while (ib < b.size() && b[ib] == next) {
      cdf_b += step_b;
      ++ib;
    }
    prev = next;
  }
  return distance;
}

std::vector<RiskProfile> align_profiles(std::vector<RiskProfile> profiles) {
  GO_EXPECTS(!profiles.empty());
  std::size_t min_len = profiles.front().values.size();
  for (const auto& p : profiles) min_len = std::min(min_len, p.values.size());
  GO_EXPECTS(min_len > 0);
  for (auto& p : profiles) p.values.resize(min_len);
  return profiles;
}

}  // namespace goodones::risk
