#include "risk/severity.hpp"

namespace goodones::risk {

using data::StateLabel;

const std::vector<SeverityEntry>& severity_table() {
  static const std::vector<SeverityEntry> table = {
      {StateLabel::kLow, StateLabel::kHigh, 64.0},
      {StateLabel::kNormal, StateLabel::kHigh, 32.0},
      {StateLabel::kLow, StateLabel::kNormal, 16.0},
      {StateLabel::kHigh, StateLabel::kLow, 8.0},
      {StateLabel::kHigh, StateLabel::kNormal, 4.0},
      {StateLabel::kNormal, StateLabel::kLow, 2.0},
  };
  return table;
}

double severity_coefficient(StateLabel benign, StateLabel adversarial) noexcept {
  for (const auto& entry : severity_table()) {
    if (entry.benign == benign && entry.adversarial == adversarial) {
      return entry.coefficient;
    }
  }
  return 1.0;  // identity transition: deviation-proportional residual risk
}

}  // namespace goodones::risk
