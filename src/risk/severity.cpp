#include "risk/severity.hpp"

namespace goodones::risk {

using data::GlycemicState;

const std::vector<SeverityEntry>& severity_table() {
  static const std::vector<SeverityEntry> table = {
      {GlycemicState::kHypo, GlycemicState::kHyper, 64.0},
      {GlycemicState::kNormal, GlycemicState::kHyper, 32.0},
      {GlycemicState::kHypo, GlycemicState::kNormal, 16.0},
      {GlycemicState::kHyper, GlycemicState::kHypo, 8.0},
      {GlycemicState::kHyper, GlycemicState::kNormal, 4.0},
      {GlycemicState::kNormal, GlycemicState::kHypo, 2.0},
  };
  return table;
}

double severity_coefficient(GlycemicState benign, GlycemicState adversarial) noexcept {
  for (const auto& entry : severity_table()) {
    if (entry.benign == benign && entry.adversarial == adversarial) {
      return entry.coefficient;
    }
  }
  return 1.0;  // identity transition: deviation-proportional residual risk
}

}  // namespace goodones::risk
