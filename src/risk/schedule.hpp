// Configurable severity schedules, supporting the sensitivity analysis the
// paper lists as future work ("our choice of severity coefficients is a
// direct threat to validity ... we plan to conduct a sensitivity analysis").
//
// A schedule assigns a coefficient to every (benign -> adversarial) state
// transition; Table I's exponential schedule is the default. The ablation
// bench sweeps alternative schedules and checks whether the vulnerability
// clusters (Table II) survive the choice.
#pragma once

#include <array>
#include <iosfwd>
#include <string>

#include "attack/campaign.hpp"
#include "data/labels.hpp"
#include "risk/profile.hpp"

namespace goodones::risk {

class SeveritySchedule {
 public:
  /// Uniform weight 1 for every transition (ablation baseline).
  SeveritySchedule();

  /// Coefficient for a transition; identity transitions are configurable
  /// too (the paper's Table I leaves them implicit; we default them to 1).
  double coefficient(data::StateLabel benign,
                     data::StateLabel adversarial) const noexcept;

  void set(data::StateLabel benign, data::StateLabel adversarial,
           double coefficient) noexcept;

  const std::string& name() const noexcept { return name_; }

  /// Binary round-trip (name + full transition table) for the serving-path
  /// model artifacts: a reloaded schedule weighs risk bit-identically.
  void save(std::ostream& out) const;
  /// Throws common::SerializationError on malformed input (state untouched).
  void load(std::istream& in);

  // --- canned schedules for the sensitivity analysis ---

  /// The paper's Table I: exponential with base 2 (64/32/16/8/4/2).
  static SeveritySchedule paper_default();

  /// Exponential with an arbitrary base: coefficients base^k in Table I's
  /// severity order (base 2 reproduces the paper).
  static SeveritySchedule exponential(double base);

  /// Linear severity: 6/5/4/3/2/1 in Table I's order.
  static SeveritySchedule linear();

  /// All transitions weighted equally (severity disabled).
  static SeveritySchedule uniform();

 private:
  static std::size_t index(data::StateLabel state) noexcept;

  std::array<double, 9> table_;  // [benign * 3 + adversarial]
  std::string name_ = "uniform";
};

/// Eq. 1 under an explicit schedule.
double instantaneous_risk(const attack::WindowOutcome& outcome,
                          const SeveritySchedule& schedule) noexcept;

/// Step-3 profile construction under an explicit schedule.
RiskProfile build_profile(std::string name,
                          const std::vector<attack::WindowOutcome>& outcomes,
                          const SeveritySchedule& schedule);

}  // namespace goodones::risk
