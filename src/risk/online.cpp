#include "risk/online.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "nn/serialize.hpp"

namespace goodones::risk {

namespace {

constexpr std::uint32_t kProfilerTag = 0x4F525050;  // "ORPP"

}  // namespace

OnlineRiskProfiler::OnlineRiskProfiler(std::vector<std::string> victims,
                                       OnlineProfilerConfig config)
    : config_(config),
      victims_(std::move(victims)),
      levels_(victims_.size(), 0.0),
      batch_counts_(victims_.size(), 0),
      currently_less_(victims_.size(), false) {
  GO_EXPECTS(!victims_.empty());
  GO_EXPECTS(config_.decay > 0.0 && config_.decay <= 1.0);
  GO_EXPECTS(config_.hysteresis >= 0.0 && config_.hysteresis < 1.0);
}

void OnlineRiskProfiler::fold_batch(std::size_t index, double batch_mean) {
  if (batch_counts_[index] == 0) {
    levels_[index] = batch_mean;
  } else if (config_.decay == 1.0) {
    // Never forget: the level is the cumulative mean of all batch means
    // (the limit the config documents; a literal EWMA with decay 1 would
    // freeze on the first batch instead).
    const auto n = static_cast<double>(batch_counts_[index]);
    levels_[index] = (levels_[index] * n + batch_mean) / (n + 1.0);
  } else {
    // Exponentially-weighted update: decay-fraction of the old level plus
    // the complementary weight of the fresh evidence.
    levels_[index] = config_.decay * levels_[index] + (1.0 - config_.decay) * batch_mean;
  }
  ++batch_counts_[index];
}

void OnlineRiskProfiler::observe(std::size_t index,
                                 const std::vector<attack::WindowOutcome>& outcomes) {
  GO_EXPECTS(index < levels_.size());
  if (outcomes.empty()) return;

  double batch_mean = 0.0;
  for (const auto& outcome : outcomes) {
    batch_mean += std::log1p(instantaneous_risk(outcome, config_.schedule));
  }
  batch_mean /= static_cast<double>(outcomes.size());
  fold_batch(index, batch_mean);
}

void OnlineRiskProfiler::observe_risks(std::size_t index, std::span<const double> risks) {
  GO_EXPECTS(index < levels_.size());
  if (risks.empty()) return;

  double batch_mean = 0.0;
  for (const double risk : risks) {
    GO_EXPECTS(risk >= 0.0);
    batch_mean += std::log1p(risk);
  }
  batch_mean /= static_cast<double>(risks.size());
  fold_batch(index, batch_mean);
}

double OnlineRiskProfiler::level(std::size_t index) const {
  GO_EXPECTS(index < levels_.size());
  return levels_[index];
}

std::size_t OnlineRiskProfiler::batches(std::size_t index) const {
  GO_EXPECTS(index < batch_counts_.size());
  return batch_counts_[index];
}

const std::string& OnlineRiskProfiler::victim(std::size_t index) const {
  GO_EXPECTS(index < victims_.size());
  return victims_[index];
}

const OnlineRiskProfiler::Partition& OnlineRiskProfiler::reassess() {
  for (const std::size_t count : batch_counts_) {
    GO_EXPECTS(count > 0);
  }

  // 1-D max-gap split of the sorted levels (degenerate spread -> everyone
  // is equally vulnerable; put all victims in the less-vulnerable group).
  std::vector<std::size_t> order(levels_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return levels_[a] < levels_[b]; });

  double best_gap = 0.0;
  std::size_t split_after = order.size();  // index into the sorted order
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const double gap = levels_[order[i + 1]] - levels_[order[i]];
    if (gap > best_gap) {
      best_gap = gap;
      split_after = i;
    }
  }

  partition_ = Partition{};
  if (split_after == order.size() || best_gap <= 0.0) {
    partition_.less_vulnerable = order;
    std::fill(currently_less_.begin(), currently_less_.end(), true);
    return partition_;
  }

  // Boundary with hysteresis: after the first assessment, victims keep
  // their previous side unless they cross the boundary by the configured
  // relative margin.
  const double boundary =
      (levels_[order[split_after]] + levels_[order[split_after + 1]]) / 2.0;
  const double margin =
      first_assessment_ ? 0.0 : config_.hysteresis * std::abs(boundary);
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const bool less = levels_[i] < boundary - margin
                          ? true
                          : (levels_[i] > boundary + margin ? false : currently_less_[i]);
    currently_less_[i] = less;
    (less ? partition_.less_vulnerable : partition_.more_vulnerable).push_back(i);
  }
  first_assessment_ = false;
  return partition_;
}

void OnlineRiskProfiler::save(std::ostream& out) const {
  nn::write_u32(out, kProfilerTag);
  nn::write_u32(out, static_cast<std::uint32_t>(victims_.size()));
  for (const auto& name : victims_) nn::write_string(out, name);
  nn::write_f64_vector(out, levels_);
  std::vector<std::uint8_t> less_bytes(victims_.size());
  for (std::size_t i = 0; i < victims_.size(); ++i) {
    less_bytes[i] = currently_less_[i] ? 1 : 0;
  }
  for (const std::size_t count : batch_counts_) nn::write_u64(out, count);
  nn::write_u8_vector(out, less_bytes);
  nn::write_u32(out, first_assessment_ ? 1 : 0);
}

void OnlineRiskProfiler::load(std::istream& in) {
  nn::expect_u32(in, kProfilerTag, "online profiler tag");
  const std::uint32_t n = nn::read_u32(in, "online profiler victim count");
  if (n != victims_.size()) {
    throw common::SerializationError(
        "online profiler artifact victim count mismatch: artifact " + std::to_string(n) +
        ", profiler tracks " + std::to_string(victims_.size()));
  }
  for (std::size_t i = 0; i < victims_.size(); ++i) {
    const std::string name = nn::read_string(in, "online profiler victim name");
    if (name != victims_[i]) {
      throw common::SerializationError("online profiler artifact victim roster mismatch: '" +
                                       name + "' vs '" + victims_[i] + "'");
    }
  }
  std::vector<double> levels = nn::read_f64_vector(in, "online profiler levels");
  if (levels.size() != victims_.size()) {
    throw common::SerializationError("online profiler artifact level count mismatch");
  }
  std::vector<std::size_t> counts(victims_.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = nn::read_u64(in, "online profiler batch count");
  }
  const std::vector<std::uint8_t> less_bytes =
      nn::read_u8_vector(in, "online profiler hysteresis memory");
  if (less_bytes.size() != victims_.size()) {
    throw common::SerializationError("online profiler artifact hysteresis size mismatch");
  }
  const bool first = nn::read_u32(in, "online profiler first-assessment flag") != 0;

  // All reads succeeded: commit atomically.
  levels_ = std::move(levels);
  batch_counts_ = std::move(counts);
  for (std::size_t i = 0; i < victims_.size(); ++i) currently_less_[i] = less_bytes[i] != 0;
  first_assessment_ = first;
  partition_ = Partition{};
}

}  // namespace goodones::risk
