#include "risk/online.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace goodones::risk {

OnlineRiskProfiler::OnlineRiskProfiler(std::vector<std::string> victims,
                                       OnlineProfilerConfig config)
    : config_(config),
      victims_(std::move(victims)),
      levels_(victims_.size(), 0.0),
      batch_counts_(victims_.size(), 0),
      currently_less_(victims_.size(), false) {
  GO_EXPECTS(!victims_.empty());
  GO_EXPECTS(config_.decay > 0.0 && config_.decay <= 1.0);
  GO_EXPECTS(config_.hysteresis >= 0.0 && config_.hysteresis < 1.0);
}

void OnlineRiskProfiler::observe(std::size_t index,
                                 const std::vector<attack::WindowOutcome>& outcomes) {
  GO_EXPECTS(index < levels_.size());
  if (outcomes.empty()) return;

  double batch_mean = 0.0;
  for (const auto& outcome : outcomes) {
    batch_mean += std::log1p(instantaneous_risk(outcome, config_.schedule));
  }
  batch_mean /= static_cast<double>(outcomes.size());

  if (batch_counts_[index] == 0) {
    levels_[index] = batch_mean;
  } else {
    // Exponentially-weighted update: decay-fraction of the old level plus
    // the complementary weight of the fresh evidence.
    levels_[index] = config_.decay * levels_[index] + (1.0 - config_.decay) * batch_mean;
  }
  ++batch_counts_[index];
}

double OnlineRiskProfiler::level(std::size_t index) const {
  GO_EXPECTS(index < levels_.size());
  return levels_[index];
}

std::size_t OnlineRiskProfiler::batches(std::size_t index) const {
  GO_EXPECTS(index < batch_counts_.size());
  return batch_counts_[index];
}

const std::string& OnlineRiskProfiler::victim(std::size_t index) const {
  GO_EXPECTS(index < victims_.size());
  return victims_[index];
}

const OnlineRiskProfiler::Partition& OnlineRiskProfiler::reassess() {
  for (const std::size_t count : batch_counts_) {
    GO_EXPECTS(count > 0);
  }

  // 1-D max-gap split of the sorted levels (degenerate spread -> everyone
  // is equally vulnerable; put all victims in the less-vulnerable group).
  std::vector<std::size_t> order(levels_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return levels_[a] < levels_[b]; });

  double best_gap = 0.0;
  std::size_t split_after = order.size();  // index into the sorted order
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const double gap = levels_[order[i + 1]] - levels_[order[i]];
    if (gap > best_gap) {
      best_gap = gap;
      split_after = i;
    }
  }

  partition_ = Partition{};
  if (split_after == order.size() || best_gap <= 0.0) {
    partition_.less_vulnerable = order;
    std::fill(currently_less_.begin(), currently_less_.end(), true);
    return partition_;
  }

  // Boundary with hysteresis: after the first assessment, victims keep
  // their previous side unless they cross the boundary by the configured
  // relative margin.
  const double boundary =
      (levels_[order[split_after]] + levels_[order[split_after + 1]]) / 2.0;
  const double margin =
      first_assessment_ ? 0.0 : config_.hysteresis * std::abs(boundary);
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    const bool less = levels_[i] < boundary - margin
                          ? true
                          : (levels_[i] > boundary + margin ? false : currently_less_[i]);
    currently_less_[i] = less;
    (less ? partition_.less_vulnerable : partition_.more_vulnerable).push_back(i);
  }
  first_assessment_ = false;
  return partition_;
}

}  // namespace goodones::risk
