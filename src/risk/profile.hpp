// Instantaneous risk (paper Eq. 1-2) and per-victim time-series risk
// profiles (framework steps 2 and 3).
//
//   Z_t = (y_t - f(x_t))^2          deviation magnitude between benign and
//                                   adversarial model predictions (Eq. 2)
//   R_t = S * Z_t                   severity-weighted instantaneous risk (Eq. 1)
#pragma once

#include <string>
#include <vector>

#include "attack/campaign.hpp"

namespace goodones::risk {

/// Eq. 2: squared deviation between benign and adversarial predictions.
double deviation_magnitude(double benign_prediction,
                           double adversarial_prediction) noexcept;

/// Eq. 1 applied to one attacked window: severity of the induced
/// prediction-state transition times the squared deviation.
double instantaneous_risk(const attack::WindowOutcome& outcome) noexcept;

/// A victim's continuous risk profile: R_t at every attacked timestamp,
/// in time order (framework step 3). `name` is the domain's display label
/// for the entity (e.g. "A_3" for a BGMS patient, "S_07" for a sensor).
struct RiskProfile {
  std::string name;
  std::vector<double> values;

  double mean() const noexcept;
  double peak() const noexcept;

  /// log1p-compressed copy. Risk spans orders of magnitude (severity 64 x
  /// squared deviations); log scaling keeps profile distances from being
  /// dominated by single spikes when clustering.
  std::vector<double> log_scaled() const;
};

/// Builds the profile of one victim from their campaign outcomes.
RiskProfile build_profile(std::string name,
                          const std::vector<attack::WindowOutcome>& outcomes);

/// Truncates all profiles to the shortest length so they form an aligned
/// matrix for distance computation. Requires non-empty, non-degenerate input.
std::vector<RiskProfile> align_profiles(std::vector<RiskProfile> profiles);

/// Empirical 1-D Wasserstein-1 distance between two risk-sample sets:
/// the integral of |F_a - F_b| over the merged support. Order-insensitive
/// (both inputs are sorted internally), so concurrent accumulation of the
/// same samples yields the same distance bitwise as a serial pass. Either
/// side empty -> 0.0. Takes copies by value because it must sort.
double distribution_distance(std::vector<double> a, std::vector<double> b);

}  // namespace goodones::risk
