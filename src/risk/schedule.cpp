#include "risk/schedule.hpp"

#include <istream>
#include <ostream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "nn/serialize.hpp"
#include "risk/severity.hpp"

namespace goodones::risk {

using StateLabel = data::StateLabel;

namespace {
constexpr std::uint32_t kScheduleTag = 0x53455653;  // "SEVS"
}  // namespace

std::size_t SeveritySchedule::index(StateLabel state) noexcept {
  return static_cast<std::size_t>(state);
}

SeveritySchedule::SeveritySchedule() {
  table_.fill(1.0);
}

double SeveritySchedule::coefficient(StateLabel benign,
                                     StateLabel adversarial) const noexcept {
  return table_[index(benign) * 3 + index(adversarial)];
}

void SeveritySchedule::set(StateLabel benign, StateLabel adversarial,
                           double coefficient) noexcept {
  table_[index(benign) * 3 + index(adversarial)] = coefficient;
}

void SeveritySchedule::save(std::ostream& out) const {
  nn::write_u32(out, kScheduleTag);
  nn::write_string(out, name_);
  for (const double c : table_) nn::write_f64(out, c);
}

void SeveritySchedule::load(std::istream& in) {
  nn::expect_u32(in, kScheduleTag, "severity schedule tag");
  std::string name = nn::read_string(in, "severity schedule name");
  std::array<double, 9> table{};
  for (double& c : table) c = nn::read_f64(in, "severity coefficient");
  name_ = std::move(name);
  table_ = table;
}

SeveritySchedule SeveritySchedule::paper_default() {
  SeveritySchedule schedule = exponential(2.0);
  schedule.name_ = "paper (exp base 2)";
  return schedule;
}

SeveritySchedule SeveritySchedule::exponential(double base) {
  GO_EXPECTS(base > 1.0);
  // Table I's severity order, most to least severe; coefficient base^k with
  // k = 6..1 so base 2 yields 64/32/16/8/4/2.
  const auto& order = severity_table();
  double k = static_cast<double>(order.size());
  SeveritySchedule out;
  for (const auto& entry : order) {
    double c = 1.0;
    for (double i = 0; i < k; ++i) c *= base;
    out.set(entry.benign, entry.adversarial, c);
    k -= 1.0;
  }
  out.name_ = "exp base " + common::format_double(base);
  return out;
}

SeveritySchedule SeveritySchedule::linear() {
  SeveritySchedule out;
  const auto& order = severity_table();
  double c = static_cast<double>(order.size());
  for (const auto& entry : order) {
    out.set(entry.benign, entry.adversarial, c);
    c -= 1.0;
  }
  out.name_ = "linear";
  return out;
}

SeveritySchedule SeveritySchedule::uniform() {
  SeveritySchedule out;
  out.name_ = "uniform";
  return out;
}

double instantaneous_risk(const attack::WindowOutcome& outcome,
                          const SeveritySchedule& schedule) noexcept {
  const double severity = schedule.coefficient(outcome.benign_predicted_state,
                                               outcome.adversarial_predicted_state);
  return severity * deviation_magnitude(outcome.attack.benign_prediction,
                                        outcome.attack.adversarial_prediction);
}

RiskProfile build_profile(std::string name,
                          const std::vector<attack::WindowOutcome>& outcomes,
                          const SeveritySchedule& schedule) {
  RiskProfile profile;
  profile.name = std::move(name);
  profile.values.reserve(outcomes.size());
  for (const auto& outcome : outcomes) {
    profile.values.push_back(instantaneous_risk(outcome, schedule));
  }
  return profile;
}

}  // namespace goodones::risk
