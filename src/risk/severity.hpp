// Default severity coefficients for state transitions (paper Table I),
// expressed over the generic state vocabulary.
//
// Exponential coefficients encode the non-linear impact of misdiagnoses:
// mispredicting a low-state victim as high triggers the worst possible
// response on an already-low victim (S = 64; in the BGMS case study, an
// insulin overdose on a hypoglycemic patient), while mispredicting normal
// as low merely withholds a response (S = 2). Domains that need different
// weights supply their own risk::SeveritySchedule (see risk/schedule.hpp)
// through their DomainAdapter.
#pragma once

#include <vector>

#include "data/labels.hpp"

namespace goodones::risk {

/// One row of Table I.
struct SeverityEntry {
  data::StateLabel benign;
  data::StateLabel adversarial;
  double coefficient;
};

/// The paper's Table I, in its printed order (most to least severe).
const std::vector<SeverityEntry>& severity_table();

/// Coefficient for a (benign-prediction -> adversarial-prediction) state
/// transition. Identity transitions return 1: a failed attack still shifted
/// the prediction, and the residual deviation carries proportional risk.
double severity_coefficient(data::StateLabel benign,
                            data::StateLabel adversarial) noexcept;

}  // namespace goodones::risk
