// Severity coefficients for glycemic state transitions (paper Table I).
//
// Exponential coefficients encode the non-linear clinical impact of
// misdiagnoses: mispredicting a hypoglycemic patient as hyperglycemic
// triggers an insulin overdose on an already-low patient (the worst case,
// S = 64), while mispredicting normal as hypoglycemic merely withholds a
// dose (S = 2).
#pragma once

#include <vector>

#include "data/glucose_state.hpp"

namespace goodones::risk {

/// One row of Table I.
struct SeverityEntry {
  data::GlycemicState benign;
  data::GlycemicState adversarial;
  double coefficient;
};

/// The paper's Table I, in its printed order (most to least severe).
const std::vector<SeverityEntry>& severity_table();

/// Coefficient for a (benign-prediction -> adversarial-prediction) state
/// transition. Identity transitions return 1: a failed attack still shifted
/// the prediction, and the residual deviation carries proportional risk.
double severity_coefficient(data::GlycemicState benign,
                            data::GlycemicState adversarial) noexcept;

}  // namespace goodones::risk
