// One-class support vector machine with an SMO solver (Schölkopf's
// nu-formulation, the algorithm behind scikit-learn/libsvm's OneClassSVM).
//
//   minimize    (1/2) * alpha^T Q alpha
//   subject to  0 <= alpha_i <= 1/(nu*l),  sum_i alpha_i = 1
//
// Decision: f(x) = sum_i alpha_i K(x_i, x) - rho; a sample is anomalous
// when f(x) < 0. The paper's Appendix-B parameters (sigmoid kernel,
// coef0 = 10, nu = 0.5) are expressible; note that on non-negative feature
// dot products a large positive coef0 saturates tanh and the kernel loses
// discrimination — our detector therefore standardizes features internally
// (z-score), matching common practice, and EXPERIMENTS.md documents the
// coef0 used in the reproduction runs.
#pragma once

#include <cstdint>
#include <vector>

#include "data/scaler.hpp"
#include "detect/detector.hpp"

namespace goodones::detect {

enum class Kernel : std::uint8_t { kRbf, kSigmoid, kLinear, kPoly };

enum class GammaMode : std::uint8_t {
  kAuto,   ///< 1 / n_features (sklearn "auto", the paper's setting)
  kScale,  ///< 1 / (n_features * feature variance) (sklearn "scale")
};

struct OcsvmConfig {
  Kernel kernel = Kernel::kSigmoid;  ///< paper Appendix B
  GammaMode gamma = GammaMode::kAuto;
  double coef0 = 10.0;               ///< paper Appendix B (see header note)
  int degree = 3;                    ///< poly only
  double nu = 0.5;                   ///< paper Appendix B
  double tolerance = 1e-3;           ///< KKT stopping tolerance
  std::size_t max_iterations = 20000;  ///< SMO iteration cap (0 = paper's "-1"/unbounded)
  /// Caps training points (stride subsampling) to bound the kernel matrix.
  std::size_t max_train_points = 2000;
};

class OneClassSvm final : public AnomalyDetector {
 public:
  explicit OneClassSvm(OcsvmConfig config = {});

  /// Unsupervised: trains on `benign` only; `malicious` is ignored.
  void fit(const std::vector<nn::Matrix>& benign,
           const std::vector<nn::Matrix>& malicious) override;

  /// Negated decision function (-f(x)); positive = anomalous side.
  double anomaly_score(const nn::Matrix& window) const override;

  bool flags(const nn::Matrix& window) const override;

  bool flags_from_score(const nn::Matrix& /*window*/, double score) const override {
    return score > 0.0;
  }

  std::string name() const override { return "OneClassSVM"; }

  /// Persists the scoring-relevant config, the internal standardizer and
  /// the support-vector expansion; a reloaded detector's decision function
  /// is bit-identical.
  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

  /// Per-sample classification, like the paper's kNN.
  InputGranularity granularity() const override { return InputGranularity::kSample; }

  double rho() const noexcept { return rho_; }
  std::size_t num_support_vectors() const noexcept { return support_vectors_.rows(); }

  /// Support-vector feature width (0 before fit).
  std::size_t input_width() const noexcept override { return support_vectors_.cols(); }
  std::size_t iterations_used() const noexcept { return iterations_used_; }

 private:
  double kernel_value(std::span<const double> a, std::span<const double> b) const;
  double decision_function(const std::vector<double>& standardized) const;

  OcsvmConfig config_;
  double gamma_value_ = 0.0;
  data::StandardScaler standardizer_;
  nn::Matrix support_vectors_;       // rows = SVs (standardized features)
  std::vector<double> coefficients_; // alpha_i of the kept SVs
  double rho_ = 0.0;
  std::size_t iterations_used_ = 0;
};

}  // namespace goodones::detect
