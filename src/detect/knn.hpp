// k-nearest-neighbors anomaly classifier.
//
// Mirrors the paper's scikit-learn KNeighborsClassifier configuration
// (Appendix B): 7 neighbors, uniform weights, Minkowski metric with p = 2.
// Supervised: trained on benign windows plus malicious windows from the
// simulated attack; a window is flagged when the majority of its k nearest
// training points are malicious.
#pragma once

#include <cstdint>

#include "detect/detector.hpp"

namespace goodones::detect {

struct KnnConfig {
  std::size_t k = 7;
  double minkowski_p = 2.0;
  /// Caps per-class training points (deterministic stride subsampling);
  /// 0 = unlimited. Brute-force queries are O(train size).
  std::size_t max_points_per_class = 6000;
};

class KnnDetector final : public AnomalyDetector {
 public:
  explicit KnnDetector(KnnConfig config = {});

  void fit(const std::vector<nn::Matrix>& benign,
           const std::vector<nn::Matrix>& malicious) override;

  /// Fraction of the k nearest neighbors that are malicious.
  double anomaly_score(const nn::Matrix& window) const override;

  /// Majority vote of the k nearest neighbors.
  bool flags(const nn::Matrix& window) const override;

  /// Batched queries: the training matrix is walked in row blocks sized to
  /// stay cache-resident while every query in the batch updates its own
  /// neighbor heap, so one pass over the reference set serves the whole
  /// batch. Each query still visits training rows in index order —
  /// scores are bitwise-identical to per-window anomaly_score.
  std::vector<double> score_batch(std::span<const nn::Matrix> windows) const override;

  bool flags_from_score(const nn::Matrix& /*window*/, double score) const override {
    return score > 0.5;
  }

  std::string name() const override { return "kNN"; }

  /// Persists config + training points; a reloaded detector votes
  /// bit-identically on every query.
  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

  /// Per-sample classification, as in the paper's Fig. 5.
  InputGranularity granularity() const override { return InputGranularity::kSample; }

  std::size_t train_size() const noexcept { return points_.rows(); }

  /// Flattened training-point width (0 before fit).
  std::size_t input_width() const noexcept override { return points_.cols(); }

 private:
  double malicious_neighbor_fraction(const std::vector<double>& query) const;

  KnnConfig config_;
  nn::Matrix points_;           // train points, one flattened window per row
  std::vector<std::uint8_t> labels_;  // 1 = malicious
};

}  // namespace goodones::detect
