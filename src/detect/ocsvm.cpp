#include "detect/ocsvm.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.hpp"
#include "data/window.hpp"
#include "nn/serialize.hpp"

namespace goodones::detect {

namespace {

constexpr std::uint32_t kOcsvmTag = 0x4F435356;  // "OCSV"

constexpr double kTau = 1e-12;  // curvature floor for non-PSD kernels (libsvm)

double dot(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

OneClassSvm::OneClassSvm(OcsvmConfig config) : config_(config) {
  GO_EXPECTS(config_.nu > 0.0 && config_.nu <= 1.0);
  GO_EXPECTS(config_.tolerance > 0.0);
  GO_EXPECTS(config_.max_train_points >= 2);
}

double OneClassSvm::kernel_value(std::span<const double> a, std::span<const double> b) const {
  switch (config_.kernel) {
    case Kernel::kRbf:
      return std::exp(-gamma_value_ * squared_distance(a, b));
    case Kernel::kSigmoid:
      return std::tanh(gamma_value_ * dot(a, b) + config_.coef0);
    case Kernel::kLinear:
      return dot(a, b);
    case Kernel::kPoly:
      return std::pow(gamma_value_ * dot(a, b) + config_.coef0, config_.degree);
  }
  return 0.0;
}

void OneClassSvm::fit(const std::vector<nn::Matrix>& benign,
                      const std::vector<nn::Matrix>& /*malicious*/) {
  GO_EXPECTS(benign.size() >= 2);

  // Stride-subsample and flatten the benign windows.
  std::size_t n = std::min(benign.size(), config_.max_train_points);
  const double stride = static_cast<double>(benign.size()) / static_cast<double>(n);
  const std::size_t dim = benign.front().size();
  nn::Matrix raw(n, dim);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& w = benign[static_cast<std::size_t>(static_cast<double>(i) * stride)];
    const auto flat = data::flatten(w);
    GO_EXPECTS(flat.size() == dim);
    std::copy(flat.begin(), flat.end(), raw.row(i).begin());
  }

  standardizer_.fit(raw);
  const nn::Matrix x = standardizer_.transform(raw);

  // Gamma: sklearn's "auto" = 1/d; "scale" = 1/(d * var). Variance of the
  // standardized features is 1 by construction, so both coincide here, but
  // the mode is kept for configs that skip standardization in the future.
  gamma_value_ = 1.0 / static_cast<double>(dim);

  // --- SMO over the nu-one-class dual ---
  const double upper = 1.0 / (config_.nu * static_cast<double>(n));

  // libsvm's initialization: the first floor(nu*l) points at the upper
  // bound, one fractional point, rest zero. Satisfies sum(alpha) = 1.
  std::vector<double> alpha(n, 0.0);
  {
    const auto full = static_cast<std::size_t>(config_.nu * static_cast<double>(n));
    for (std::size_t i = 0; i < full && i < n; ++i) alpha[i] = upper;
    if (full < n) alpha[full] = 1.0 - static_cast<double>(full) * upper;
  }

  // Dense kernel matrix (bounded by max_train_points^2).
  nn::Matrix q(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double k = kernel_value(x.row(i), x.row(j));
      q(i, j) = k;
      q(j, i) = k;
    }
  }

  // Gradient of the dual objective: G = Q * alpha.
  std::vector<double> grad(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) sum += q(i, j) * alpha[j];
    grad[i] = sum;
  }

  const std::size_t max_iter =
      config_.max_iterations == 0 ? 10'000'000 : config_.max_iterations;
  std::size_t iter = 0;
  for (; iter < max_iter; ++iter) {
    // Maximal-violating-pair selection: i minimizes G among alpha_i < C,
    // j maximizes G among alpha_j > 0.
    std::size_t i_sel = n;
    std::size_t j_sel = n;
    double g_min = std::numeric_limits<double>::infinity();
    double g_max = -std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      if (alpha[t] < upper - 1e-15 && grad[t] < g_min) {
        g_min = grad[t];
        i_sel = t;
      }
      if (alpha[t] > 1e-15 && grad[t] > g_max) {
        g_max = grad[t];
        j_sel = t;
      }
    }
    if (i_sel == n || j_sel == n || g_max - g_min < config_.tolerance) break;

    // Move mass from j to i along the equality constraint.
    double curvature = q(i_sel, i_sel) + q(j_sel, j_sel) - 2.0 * q(i_sel, j_sel);
    if (curvature <= 0.0) curvature = kTau;  // non-PSD kernel guard
    double delta = (g_max - g_min) / curvature;
    delta = std::min(delta, upper - alpha[i_sel]);
    delta = std::min(delta, alpha[j_sel]);
    if (delta <= 0.0) break;

    alpha[i_sel] += delta;
    alpha[j_sel] -= delta;
    for (std::size_t t = 0; t < n; ++t) {
      grad[t] += delta * (q(t, i_sel) - q(t, j_sel));
    }
  }
  iterations_used_ = iter;

  // rho: mean gradient over free support vectors; fall back to the bound
  // midpoint when none are free.
  double rho_sum = 0.0;
  std::size_t rho_count = 0;
  for (std::size_t t = 0; t < n; ++t) {
    if (alpha[t] > 1e-12 && alpha[t] < upper - 1e-12) {
      rho_sum += grad[t];
      ++rho_count;
    }
  }
  if (rho_count > 0) {
    rho_ = rho_sum / static_cast<double>(rho_count);
  } else {
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    for (std::size_t t = 0; t < n; ++t) {
      if (alpha[t] <= 1e-12) lo = std::max(lo, grad[t]);
      else hi = std::min(hi, grad[t]);
    }
    rho_ = (lo + hi) / 2.0;
  }

  // Keep only support vectors.
  std::vector<std::size_t> sv_index;
  for (std::size_t t = 0; t < n; ++t) {
    if (alpha[t] > 1e-12) sv_index.push_back(t);
  }
  GO_ENSURES(!sv_index.empty());
  support_vectors_ = nn::Matrix(sv_index.size(), dim);
  coefficients_.resize(sv_index.size());
  for (std::size_t s = 0; s < sv_index.size(); ++s) {
    const auto src = x.row(sv_index[s]);
    std::copy(src.begin(), src.end(), support_vectors_.row(s).begin());
    coefficients_[s] = alpha[sv_index[s]];
  }
}

double OneClassSvm::decision_function(const std::vector<double>& standardized) const {
  GO_EXPECTS(support_vectors_.rows() > 0);
  double sum = 0.0;
  for (std::size_t s = 0; s < support_vectors_.rows(); ++s) {
    sum += coefficients_[s] * kernel_value(standardized, support_vectors_.row(s));
  }
  return sum - rho_;
}

double OneClassSvm::anomaly_score(const nn::Matrix& window) const {
  const auto flat = data::flatten(window);
  nn::Matrix row(1, flat.size());
  std::copy(flat.begin(), flat.end(), row.row(0).begin());
  const nn::Matrix standardized = standardizer_.transform(row);
  std::vector<double> features(standardized.row(0).begin(), standardized.row(0).end());
  return -decision_function(features);
}

bool OneClassSvm::flags(const nn::Matrix& window) const {
  return anomaly_score(window) > 0.0;
}

void OneClassSvm::save(std::ostream& out) const {
  nn::write_u32(out, kOcsvmTag);
  nn::write_u32(out, static_cast<std::uint32_t>(config_.kernel));
  nn::write_u32(out, static_cast<std::uint32_t>(config_.gamma));
  nn::write_f64(out, config_.coef0);
  nn::write_u32(out, static_cast<std::uint32_t>(config_.degree));
  nn::write_f64(out, config_.nu);
  nn::write_f64(out, gamma_value_);
  standardizer_.save(out);
  nn::write_matrix(out, support_vectors_);
  nn::write_f64_vector(out, coefficients_);
  nn::write_f64(out, rho_);
  nn::write_u64(out, iterations_used_);
}

void OneClassSvm::load(std::istream& in) {
  nn::expect_u32(in, kOcsvmTag, "OneClassSVM detector tag");
  OcsvmConfig config = config_;
  const std::uint32_t kernel = nn::read_u32(in, "OCSVM kernel");
  const std::uint32_t gamma_mode = nn::read_u32(in, "OCSVM gamma mode");
  // Validate enum ranges before casting: an out-of-range kernel would make
  // kernel_value() silently return 0 for every pair (constant scores).
  if (kernel > static_cast<std::uint32_t>(Kernel::kPoly) ||
      gamma_mode > static_cast<std::uint32_t>(GammaMode::kScale)) {
    throw common::SerializationError("OCSVM artifact carries an invalid kernel/gamma mode");
  }
  config.kernel = static_cast<Kernel>(kernel);
  config.gamma = static_cast<GammaMode>(gamma_mode);
  config.coef0 = nn::read_f64(in, "OCSVM coef0");
  config.degree = static_cast<int>(nn::read_u32(in, "OCSVM degree"));
  config.nu = nn::read_f64(in, "OCSVM nu");
  const double gamma_value = nn::read_f64(in, "OCSVM gamma value");
  data::StandardScaler standardizer;
  standardizer.load(in);
  nn::Matrix support_vectors = nn::read_matrix(in);
  std::vector<double> coefficients = nn::read_f64_vector(in, "OCSVM coefficients");
  const double rho = nn::read_f64(in, "OCSVM rho");
  const std::uint64_t iterations = nn::read_u64(in, "OCSVM iterations");
  if (coefficients.size() != support_vectors.rows()) {
    throw common::SerializationError("OCSVM artifact coefficient/SV count mismatch");
  }
  if (standardizer.fitted() && standardizer.num_features() != support_vectors.cols()) {
    throw common::SerializationError("OCSVM artifact standardizer/SV width mismatch");
  }
  config_ = config;
  gamma_value_ = gamma_value;
  standardizer_ = std::move(standardizer);
  support_vectors_ = std::move(support_vectors);
  coefficients_ = std::move(coefficients);
  rho_ = rho;
  iterations_used_ = iterations;
}

}  // namespace goodones::detect
