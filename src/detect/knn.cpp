#include "detect/knn.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "data/window.hpp"
#include "nn/serialize.hpp"

namespace goodones::detect {

namespace {

constexpr std::uint32_t kKnnTag = 0x4B4E4E44;  // "KNND"

/// Minkowski distance of order p between a query and a training row.
double minkowski(const std::vector<double>& a, std::span<const double> b, double p) {
  double sum = 0.0;
  if (p == 2.0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      const double d = a[i] - b[i];
      sum += d * d;
    }
    return std::sqrt(sum);
  }
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::pow(std::abs(a[i] - b[i]), p);
  return std::pow(sum, 1.0 / p);
}

/// Deterministic stride subsample of `windows` down to at most `cap` rows.
std::vector<const nn::Matrix*> subsample(const std::vector<nn::Matrix>& windows,
                                         std::size_t cap) {
  std::vector<const nn::Matrix*> out;
  if (cap == 0 || windows.size() <= cap) {
    out.reserve(windows.size());
    for (const auto& w : windows) out.push_back(&w);
    return out;
  }
  out.reserve(cap);
  const double stride = static_cast<double>(windows.size()) / static_cast<double>(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    out.push_back(&windows[static_cast<std::size_t>(static_cast<double>(i) * stride)]);
  }
  return out;
}

}  // namespace

KnnDetector::KnnDetector(KnnConfig config) : config_(config) {
  GO_EXPECTS(config_.k >= 1);
  GO_EXPECTS(config_.minkowski_p > 0.0);
}

void KnnDetector::fit(const std::vector<nn::Matrix>& benign,
                      const std::vector<nn::Matrix>& malicious) {
  GO_EXPECTS(!benign.empty());
  GO_EXPECTS(!malicious.empty());  // kNN is supervised: needs both classes

  const auto benign_sample = subsample(benign, config_.max_points_per_class);
  const auto malicious_sample = subsample(malicious, config_.max_points_per_class);

  const std::size_t dim = benign_sample.front()->size();
  points_ = nn::Matrix(benign_sample.size() + malicious_sample.size(), dim);
  labels_.assign(points_.rows(), 0);

  std::size_t row = 0;
  for (const auto* w : benign_sample) {
    const auto flat = data::flatten(*w);
    GO_EXPECTS(flat.size() == dim);
    std::copy(flat.begin(), flat.end(), points_.row(row).begin());
    labels_[row] = 0;
    ++row;
  }
  for (const auto* w : malicious_sample) {
    const auto flat = data::flatten(*w);
    GO_EXPECTS(flat.size() == dim);
    std::copy(flat.begin(), flat.end(), points_.row(row).begin());
    labels_[row] = 1;
    ++row;
  }
}

double KnnDetector::malicious_neighbor_fraction(const std::vector<double>& query) const {
  GO_EXPECTS(points_.rows() > 0);
  GO_EXPECTS(query.size() == points_.cols());
  const std::size_t k = std::min(config_.k, points_.rows());

  // Max-heap of (distance, label) over the best k seen so far.
  std::vector<std::pair<double, std::uint8_t>> heap;
  heap.reserve(k + 1);
  for (std::size_t r = 0; r < points_.rows(); ++r) {
    const double dist = minkowski(query, points_.row(r), config_.minkowski_p);
    if (heap.size() < k) {
      heap.emplace_back(dist, labels_[r]);
      std::push_heap(heap.begin(), heap.end());
    } else if (dist < heap.front().first) {
      std::pop_heap(heap.begin(), heap.end());
      heap.back() = {dist, labels_[r]};
      std::push_heap(heap.begin(), heap.end());
    }
  }
  std::size_t malicious = 0;
  for (const auto& [dist, label] : heap) malicious += label;
  return static_cast<double>(malicious) / static_cast<double>(heap.size());
}

void KnnDetector::save(std::ostream& out) const {
  nn::write_u32(out, kKnnTag);
  nn::write_u64(out, config_.k);
  nn::write_f64(out, config_.minkowski_p);
  nn::write_u64(out, config_.max_points_per_class);
  nn::write_matrix(out, points_);
  nn::write_u8_vector(out, labels_);
}

void KnnDetector::load(std::istream& in) {
  nn::expect_u32(in, kKnnTag, "kNN detector tag");
  KnnConfig config;
  config.k = nn::read_u64(in, "kNN k");
  config.minkowski_p = nn::read_f64(in, "kNN minkowski p");
  config.max_points_per_class = nn::read_u64(in, "kNN max points per class");
  nn::Matrix points = nn::read_matrix(in);
  std::vector<std::uint8_t> labels = nn::read_u8_vector(in, "kNN labels");
  if (labels.size() != points.rows()) {
    throw common::SerializationError("kNN artifact label/point count mismatch");
  }
  // k = 0 would make every vote 0/0 = NaN; enforce the constructor's
  // preconditions on artifact-supplied config too.
  if (config.k < 1 || !(config.minkowski_p > 0.0)) {
    throw common::SerializationError("kNN artifact carries an invalid config");
  }
  config_ = config;
  points_ = std::move(points);
  labels_ = std::move(labels);
}

double KnnDetector::anomaly_score(const nn::Matrix& window) const {
  return malicious_neighbor_fraction(data::flatten(window));
}

std::vector<double> KnnDetector::score_batch(std::span<const nn::Matrix> windows) const {
  if (windows.empty()) return {};
  GO_EXPECTS(points_.rows() > 0);
  const std::size_t k = std::min(config_.k, points_.rows());

  std::vector<std::vector<double>> queries;
  queries.reserve(windows.size());
  for (const nn::Matrix& window : windows) {
    queries.push_back(data::flatten(window));
    GO_EXPECTS(queries.back().size() == points_.cols());
  }

  // One pass over the reference set serves every query: training rows are
  // visited in blocks small enough to stay cache-resident across the inner
  // query loop. Each query still sees rows in index order, so its heap goes
  // through exactly the per-query scan's states (bitwise-identical scores).
  std::vector<std::vector<std::pair<double, std::uint8_t>>> heaps(queries.size());
  for (auto& heap : heaps) heap.reserve(k + 1);
  constexpr std::size_t kBlockRows = 256;
  for (std::size_t block = 0; block < points_.rows(); block += kBlockRows) {
    const std::size_t block_end = std::min(points_.rows(), block + kBlockRows);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      auto& heap = heaps[q];
      for (std::size_t r = block; r < block_end; ++r) {
        const double dist = minkowski(queries[q], points_.row(r), config_.minkowski_p);
        if (heap.size() < k) {
          heap.emplace_back(dist, labels_[r]);
          std::push_heap(heap.begin(), heap.end());
        } else if (dist < heap.front().first) {
          std::pop_heap(heap.begin(), heap.end());
          heap.back() = {dist, labels_[r]};
          std::push_heap(heap.begin(), heap.end());
        }
      }
    }
  }

  std::vector<double> scores;
  scores.reserve(queries.size());
  for (const auto& heap : heaps) {
    std::size_t malicious = 0;
    for (const auto& [dist, label] : heap) malicious += label;
    scores.push_back(static_cast<double>(malicious) / static_cast<double>(heap.size()));
  }
  return scores;
}

bool KnnDetector::flags(const nn::Matrix& window) const {
  return anomaly_score(window) > 0.5;
}

}  // namespace goodones::detect
