#include "detect/factory.hpp"

#include "common/error.hpp"

namespace goodones::detect {

void AnomalyDetector::save(std::ostream& /*out*/) const {
  throw common::PreconditionError("detector '" + name() + "' does not support persistence");
}

void AnomalyDetector::load(std::istream& /*in*/) {
  throw common::PreconditionError("detector '" + name() + "' does not support persistence");
}

std::unique_ptr<AnomalyDetector> make_detector(DetectorKind kind,
                                               const DetectorSuiteConfig& config) {
  switch (kind) {
    case DetectorKind::kKnn: return std::make_unique<KnnDetector>(config.knn);
    case DetectorKind::kOcsvm: return std::make_unique<OneClassSvm>(config.ocsvm);
    case DetectorKind::kMadGan: return std::make_unique<MadGan>(config.madgan);
  }
  return nullptr;
}

const char* to_string(DetectorKind kind) noexcept {
  switch (kind) {
    case DetectorKind::kKnn: return "kNN";
    case DetectorKind::kOcsvm: return "OneClassSVM";
    case DetectorKind::kMadGan: return "MAD-GAN";
  }
  return "?";
}

}  // namespace goodones::detect
