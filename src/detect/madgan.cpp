#include "detect/madgan.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"

namespace goodones::detect {

namespace {

constexpr std::uint32_t kMadGanTag = 0x4D414447;  // "MADG"

/// Deterministic stride subsample (pointers into `windows`).
std::vector<const nn::Matrix*> subsample(const std::vector<nn::Matrix>& windows,
                                         std::size_t cap) {
  std::vector<const nn::Matrix*> out;
  if (cap == 0 || windows.size() <= cap) {
    out.reserve(windows.size());
    for (const auto& w : windows) out.push_back(&w);
    return out;
  }
  out.reserve(cap);
  const double stride = static_cast<double>(windows.size()) / static_cast<double>(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    out.push_back(&windows[static_cast<std::size_t>(static_cast<double>(i) * stride)]);
  }
  return out;
}

/// BCE gradient d/dp of -[y log p + (1-y) log(1-p)] with clamping.
double bce_grad(double p, double y) {
  const double clamped = std::clamp(p, 1e-7, 1.0 - 1e-7);
  return (clamped - y) / (clamped * (1.0 - clamped));
}

}  // namespace

MadGan::Generator::Generator(const MadGanConfig& config, common::Rng& rng)
    : lstm(config.latent_dim, config.hidden, rng),
      projection(config.hidden, config.num_signals, nn::Activation::kSigmoid, rng) {}

MadGan::Discriminator::Discriminator(const MadGanConfig& config, common::Rng& rng)
    : lstm(config.num_signals, config.hidden, rng),
      head(config.hidden, 1, nn::Activation::kSigmoid, rng) {}

MadGan::MadGan(MadGanConfig config)
    : config_(config),
      init_rng_(config.seed * 0x9E3779B97F4A7C15ULL + 1),
      generator_(config_, init_rng_),
      discriminator_(config_, init_rng_),
      inversion_z0_(config.seq_len, config.latent_dim) {
  GO_EXPECTS(config_.epochs > 0);
  GO_EXPECTS(config_.dr_lambda >= 0.0 && config_.dr_lambda <= 1.0);
  GO_EXPECTS(config_.threshold_quantile > 0.0 && config_.threshold_quantile < 1.0);
  // Fixed inversion start point: scoring is a pure function of the window.
  common::Rng z_rng(config.seed ^ 0xABCDEF12345678ULL);
  for (std::size_t t = 0; t < inversion_z0_.rows(); ++t) {
    for (double& v : inversion_z0_.row(t)) v = z_rng.normal(0.0, 0.5);
  }
}

nn::Matrix MadGan::sample_latent(common::Rng& rng) const {
  nn::Matrix z(config_.seq_len, config_.latent_dim);
  for (std::size_t t = 0; t < z.rows(); ++t) {
    for (double& v : z.row(t)) v = rng.normal();
  }
  return z;
}

nn::Matrix MadGan::generator_forward(const Generator& g, const nn::Matrix& z,
                                     nn::Lstm::Cache& lstm_cache,
                                     nn::Dense::Cache& proj_cache) {
  const nn::Matrix hidden = g.lstm.forward_cached(z, lstm_cache);
  return g.projection.forward_cached(hidden, proj_cache);
}

double MadGan::discriminator_forward(const Discriminator& d, const nn::Matrix& x,
                                     nn::Lstm::Cache& lstm_cache,
                                     nn::Dense::Cache& head_cache) {
  const nn::Matrix hidden = d.lstm.forward_cached(x, lstm_cache);
  nn::Matrix last(1, hidden.cols());
  const auto src = hidden.row(hidden.rows() - 1);
  std::copy(src.begin(), src.end(), last.row(0).begin());
  const nn::Matrix prob = d.head.forward_cached(last, head_cache);
  return prob(0, 0);
}

nn::Matrix MadGan::discriminator_backward(Discriminator& d, double grad_prob,
                                          const nn::Lstm::Cache& lstm_cache,
                                          const nn::Dense::Cache& head_cache) {
  nn::Matrix grad_out(1, 1);
  grad_out(0, 0) = grad_prob;
  const nn::Matrix grad_last = d.head.backward(grad_out, head_cache);
  nn::Matrix grad_hidden(lstm_cache.hidden.rows(), lstm_cache.hidden.cols());
  std::copy(grad_last.row(0).begin(), grad_last.row(0).end(),
            grad_hidden.row(grad_hidden.rows() - 1).begin());
  return d.lstm.backward(grad_hidden, lstm_cache);
}

void MadGan::fit(const std::vector<nn::Matrix>& benign,
                 const std::vector<nn::Matrix>& /*malicious*/) {
  GO_EXPECTS(!benign.empty());
  GO_EXPECTS(benign.front().rows() == config_.seq_len);
  GO_EXPECTS(benign.front().cols() == config_.num_signals);

  const auto train = subsample(benign, config_.max_train_windows);

  nn::ParamRefs g_params = generator_.lstm.parameters();
  for (auto* p : generator_.projection.parameters()) g_params.push_back(p);
  nn::ParamRefs d_params = discriminator_.lstm.parameters();
  for (auto* p : discriminator_.head.parameters()) d_params.push_back(p);

  nn::Adam g_optimizer(config_.learning_rate);
  nn::Adam d_optimizer(config_.learning_rate);
  common::Rng rng(config_.seed * 0xD1342543DE82EF95ULL + 7);

  std::vector<std::size_t> order(train.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += config_.batch_size) {
      const std::size_t end = std::min(order.size(), start + config_.batch_size);
      const auto batch = static_cast<double>(end - start);

      // ---- Discriminator step: real -> 1, fake -> 0. ----
      for (std::size_t b = start; b < end; ++b) {
        const nn::Matrix& real = *train[order[b]];
        nn::Lstm::Cache dc;
        nn::Dense::Cache hc;
        const double p_real = discriminator_forward(discriminator_, real, dc, hc);
        discriminator_backward(discriminator_, bce_grad(p_real, 1.0) / batch, dc, hc);

        nn::Lstm::Cache gc;
        nn::Dense::Cache pc;
        const nn::Matrix fake = generator_forward(generator_, sample_latent(rng), gc, pc);
        nn::Lstm::Cache dc2;
        nn::Dense::Cache hc2;
        const double p_fake = discriminator_forward(discriminator_, fake, dc2, hc2);
        discriminator_backward(discriminator_, bce_grad(p_fake, 0.0) / batch, dc2, hc2);
      }
      nn::clip_global_grad_norm(d_params, config_.grad_clip);
      d_optimizer.step_and_zero(d_params);

      // ---- Generator step: make D call fakes real. ----
      for (std::size_t b = start; b < end; ++b) {
        nn::Lstm::Cache gc;
        nn::Dense::Cache pc;
        const nn::Matrix fake = generator_forward(generator_, sample_latent(rng), gc, pc);
        nn::Lstm::Cache dc;
        nn::Dense::Cache hc;
        const double p_fake = discriminator_forward(discriminator_, fake, dc, hc);
        const nn::Matrix grad_fake =
            discriminator_backward(discriminator_, bce_grad(p_fake, 1.0) / batch, dc, hc);
        const nn::Matrix grad_hidden = generator_.projection.backward(grad_fake, pc);
        generator_.lstm.backward(grad_hidden, gc);
      }
      // Discard the D gradients accumulated while backpropagating into G.
      nn::zero_all_grads(d_params);
      nn::clip_global_grad_norm(g_params, config_.grad_clip);
      g_optimizer.step_and_zero(g_params);
    }
  }

  // ---- Calibration: reconstruction scale + decision threshold. ----
  const auto calibration = subsample(benign, config_.calibration_windows);
  fitted_ = true;  // reconstruction/score paths require the flag

  std::vector<double> recon_errors;
  recon_errors.reserve(calibration.size());
  for (const auto* w : calibration) recon_errors.push_back(reconstruction_error(*w));
  recon_reference_ = std::max(common::quantile(recon_errors, 0.95), 1e-9);

  std::vector<double> scores;
  scores.reserve(calibration.size());
  for (const auto* w : calibration) scores.push_back(anomaly_score(*w));
  threshold_ = common::quantile(scores, config_.threshold_quantile);
}

double MadGan::discrimination_score(const nn::Matrix& window) const {
  GO_EXPECTS(fitted_);
  nn::Lstm::Cache dc;
  nn::Dense::Cache hc;
  return 1.0 - discriminator_forward(discriminator_, window, dc, hc);
}

double MadGan::reconstruction_error(const nn::Matrix& window) const {
  GO_EXPECTS(fitted_);
  // Latent-space inversion on a scratch generator (keeps this const and
  // thread-safe; backward only touches the scratch's gradient buffers).
  Generator scratch = generator_;
  nn::Matrix z = inversion_z0_;

  double best = std::numeric_limits<double>::infinity();
  for (std::size_t step = 0; step < config_.inversion_steps; ++step) {
    nn::Lstm::Cache gc;
    nn::Dense::Cache pc;
    const nn::Matrix reconstructed = generator_forward(scratch, z, gc, pc);
    const nn::LossResult loss = nn::mse_loss(reconstructed, window);
    best = std::min(best, loss.value);

    const nn::Matrix grad_hidden = scratch.projection.backward(loss.grad, pc);
    const nn::Matrix grad_z = scratch.lstm.backward(grad_hidden, gc);
    for (std::size_t t = 0; t < z.rows(); ++t) {
      auto z_row = z.row(t);
      const auto g_row = grad_z.row(t);
      for (std::size_t c = 0; c < z_row.size(); ++c) {
        z_row[c] -= config_.inversion_lr * g_row[c];
      }
    }
  }
  return best;
}

double MadGan::anomaly_score(const nn::Matrix& window) const {
  GO_EXPECTS(fitted_);
  const double disc = discrimination_score(window);
  const double recon = reconstruction_error(window) / recon_reference_;
  return config_.dr_lambda * disc + (1.0 - config_.dr_lambda) * recon;
}

bool MadGan::flags(const nn::Matrix& window) const {
  return anomaly_score(window) > threshold_;
}

std::vector<double> MadGan::score_batch(std::span<const nn::Matrix> windows) const {
  if (windows.empty()) return {};
  GO_EXPECTS(fitted_);
  const std::size_t batch = windows.size();
  for (const nn::Matrix& w : windows) {
    GO_EXPECTS(w.rows() == config_.seq_len && w.cols() == config_.num_signals);
  }

  // Discrimination term: one packed pass over the whole batch; the head
  // consumes each final state as its own (1 x H) row, exactly as the scalar
  // path consumes hidden.row(T - 1).
  const nn::Matrix final_states = discriminator_.lstm.run_batch(windows);
  std::vector<double> disc(batch);
  nn::Matrix last(1, final_states.cols());
  for (std::size_t i = 0; i < batch; ++i) {
    const auto src = final_states.row(i);
    std::copy(src.begin(), src.end(), last.row(0).begin());
    disc[i] = 1.0 - discriminator_.head.forward(last)(0, 0);
  }

  // Reconstruction term: batched latent inversion, three amortizations per
  // gradient step — (1) the generator LSTM runs forward over every
  // window's latent trajectory as packed per-timestep GEMMs, (2) the
  // reverse pass computes input gradients only (the inversion never reads
  // parameter gradients, so backward()'s dW/dWh GEMMs are skipped and no
  // scratch net copy is needed), with the recurrent transport batched, and
  // (3) the projection gradient flows through the const backward_input.
  // Every per-window value is bit-identical to the scalar path's.
  std::vector<nn::Matrix> z(batch, inversion_z0_);
  std::vector<double> best(batch, std::numeric_limits<double>::infinity());
  std::vector<nn::Lstm::Cache> lstm_caches;
  std::vector<nn::Matrix> grad_hiddens(batch);
  for (std::size_t step = 0; step < config_.inversion_steps; ++step) {
    generator_.lstm.forward_batch_cached(z, lstm_caches);
    for (std::size_t i = 0; i < batch; ++i) {
      nn::Dense::Cache proj_cache;
      const nn::Matrix reconstructed =
          generator_.projection.forward_cached(lstm_caches[i].hidden, proj_cache);
      const nn::LossResult loss = nn::mse_loss(reconstructed, windows[i]);
      best[i] = std::min(best[i], loss.value);
      grad_hiddens[i] = generator_.projection.backward_input(loss.grad, proj_cache);
    }
    const std::vector<nn::Matrix> grad_z =
        generator_.lstm.backward_input_batch(grad_hiddens, lstm_caches);
    for (std::size_t i = 0; i < batch; ++i) {
      for (std::size_t t = 0; t < z[i].rows(); ++t) {
        auto z_row = z[i].row(t);
        const auto g_row = grad_z[i].row(t);
        for (std::size_t c = 0; c < z_row.size(); ++c) {
          z_row[c] -= config_.inversion_lr * g_row[c];
        }
      }
    }
  }

  std::vector<double> scores(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    // Same association as anomaly_score: normalize first, then weight.
    const double recon = best[i] / recon_reference_;
    scores[i] = config_.dr_lambda * disc[i] + (1.0 - config_.dr_lambda) * recon;
  }
  return scores;
}

nn::Matrix MadGan::generate(common::Rng& rng) const {
  nn::Lstm::Cache gc;
  nn::Dense::Cache pc;
  return generator_forward(generator_, sample_latent(rng), gc, pc);
}

nn::ParamRefs MadGan::gan_parameters() {
  nn::ParamRefs params = generator_.lstm.parameters();
  for (auto* p : generator_.projection.parameters()) params.push_back(p);
  for (auto* p : discriminator_.lstm.parameters()) params.push_back(p);
  for (auto* p : discriminator_.head.parameters()) params.push_back(p);
  return params;
}

void MadGan::save(std::ostream& out) const {
  nn::write_u32(out, kMadGanTag);
  nn::write_u64(out, config_.epochs);
  nn::write_u64(out, config_.num_signals);
  nn::write_u64(out, config_.seq_len);
  nn::write_u64(out, config_.latent_dim);
  nn::write_u64(out, config_.hidden);
  nn::write_u64(out, config_.batch_size);
  nn::write_f64(out, config_.learning_rate);
  nn::write_f64(out, config_.grad_clip);
  nn::write_f64(out, config_.dr_lambda);
  nn::write_u64(out, config_.inversion_steps);
  nn::write_f64(out, config_.inversion_lr);
  nn::write_f64(out, config_.threshold_quantile);
  nn::write_u64(out, config_.max_train_windows);
  nn::write_u64(out, config_.calibration_windows);
  nn::write_u64(out, config_.seed);
  // gan_parameters() is non-const by design (it hands out mutable buffer
  // pointers for the optimizer); write_parameters only reads the values.
  MadGan& self = const_cast<MadGan&>(*this);
  nn::write_parameters(out, self.gan_parameters());
  nn::write_matrix(out, inversion_z0_);
  nn::write_f64(out, recon_reference_);
  nn::write_f64(out, threshold_);
  nn::write_u32(out, fitted_ ? 1 : 0);
}

void MadGan::load(std::istream& in) {
  nn::expect_u32(in, kMadGanTag, "MAD-GAN detector tag");
  MadGanConfig config;
  config.epochs = nn::read_u64(in, "MAD-GAN epochs");
  config.num_signals = nn::read_u64(in, "MAD-GAN num signals");
  config.seq_len = nn::read_u64(in, "MAD-GAN seq len");
  config.latent_dim = nn::read_u64(in, "MAD-GAN latent dim");
  config.hidden = nn::read_u64(in, "MAD-GAN hidden");
  config.batch_size = nn::read_u64(in, "MAD-GAN batch size");
  config.learning_rate = nn::read_f64(in, "MAD-GAN learning rate");
  config.grad_clip = nn::read_f64(in, "MAD-GAN grad clip");
  config.dr_lambda = nn::read_f64(in, "MAD-GAN dr lambda");
  config.inversion_steps = nn::read_u64(in, "MAD-GAN inversion steps");
  config.inversion_lr = nn::read_f64(in, "MAD-GAN inversion lr");
  config.threshold_quantile = nn::read_f64(in, "MAD-GAN threshold quantile");
  config.max_train_windows = nn::read_u64(in, "MAD-GAN max train windows");
  config.calibration_windows = nn::read_u64(in, "MAD-GAN calibration windows");
  config.seed = nn::read_u64(in, "MAD-GAN seed");
  // Validate before reconstructing so a corrupt artifact surfaces as a
  // SerializationError, not a constructor precondition failure.
  if (config.epochs == 0 || config.num_signals == 0 || config.seq_len == 0 ||
      config.latent_dim == 0 || config.hidden == 0 ||
      !(config.dr_lambda >= 0.0 && config.dr_lambda <= 1.0) ||
      !(config.threshold_quantile > 0.0 && config.threshold_quantile < 1.0)) {
    throw common::SerializationError("MAD-GAN artifact carries an invalid config");
  }
  // Scoring-critical fields: a tampered inversion_steps would make the
  // first anomaly_score() run ~forever; a non-finite inversion_lr would
  // NaN-poison every score (flags_from_score(NaN) = silently never flags).
  if (config.inversion_steps == 0 || config.inversion_steps > 1'000'000 ||
      !std::isfinite(config.inversion_lr) || config.inversion_lr <= 0.0 ||
      !std::isfinite(config.dr_lambda)) {
    throw common::SerializationError("MAD-GAN artifact carries an invalid scoring config");
  }
  // Rebuild nets at the artifact's shapes, then restore into the copy so
  // *this stays untouched if any later read fails.
  MadGan fresh(config);
  nn::read_parameters(in, fresh.gan_parameters());
  nn::Matrix z0 = nn::read_matrix(in);
  if (z0.rows() != config.seq_len || z0.cols() != config.latent_dim) {
    throw common::SerializationError("MAD-GAN artifact inversion-start shape mismatch");
  }
  fresh.inversion_z0_ = std::move(z0);
  fresh.recon_reference_ = nn::read_f64(in, "MAD-GAN recon reference");
  fresh.threshold_ = nn::read_f64(in, "MAD-GAN threshold");
  fresh.fitted_ = nn::read_u32(in, "MAD-GAN fitted flag") != 0;
  *this = std::move(fresh);
}

}  // namespace goodones::detect
