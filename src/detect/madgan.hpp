// MAD-GAN: multivariate time-series anomaly detection with an LSTM GAN
// (Li et al., ICANN 2019), as used by the paper's third defense.
//
// Generator: per-step latent noise -> LSTM -> time-distributed dense ->
// synthetic telemetry window. Discriminator: LSTM -> dense -> P(real).
// Anomaly score is the paper's DR-score: a convex combination of the
// discrimination score (1 - D(x)) and the reconstruction error after
// inverting the generator in latent space by gradient descent — both made
// possible by our LSTM's exact input gradients.
//
// Paper Appendix-B settings carried over: epochs = 100, signals = 4,
// sequence length = 12, step = 1.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "detect/detector.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"

namespace goodones::detect {

struct MadGanConfig {
  std::size_t epochs = 100;          ///< paper Appendix B
  std::size_t num_signals = 4;       ///< paper Appendix B
  std::size_t seq_len = 12;          ///< paper Appendix B
  std::size_t latent_dim = 4;
  std::size_t hidden = 32;
  std::size_t batch_size = 32;
  double learning_rate = 1e-3;
  double grad_clip = 2.0;

  // DR-score.
  double dr_lambda = 0.5;            ///< weight of the discrimination term
  std::size_t inversion_steps = 25;  ///< latent gradient-descent iterations
  double inversion_lr = 0.15;
  double threshold_quantile = 0.95;  ///< benign-score quantile -> decision threshold

  // Budget caps (deterministic stride subsampling).
  std::size_t max_train_windows = 3000;
  std::size_t calibration_windows = 256;

  std::uint64_t seed = 99;
};

class MadGan final : public AnomalyDetector {
 public:
  explicit MadGan(MadGanConfig config = {});

  /// Unsupervised: trains the GAN on `benign` only, then calibrates the
  /// DR-score threshold on a benign subsample.
  void fit(const std::vector<nn::Matrix>& benign,
           const std::vector<nn::Matrix>& malicious) override;

  /// DR-score: lambda * (1 - D(x)) + (1 - lambda) * normalized reconstruction.
  double anomaly_score(const nn::Matrix& window) const override;

  bool flags(const nn::Matrix& window) const override;

  /// Batched DR-scores for a request's windows. The discrimination term
  /// runs the whole batch through one nn::Lstm::run_batch; the latent
  /// inversion shares a single scratch generator and batches every gradient
  /// step's forward pass across windows (nn::Lstm::forward_batch_cached) —
  /// the per-window path pays a generator copy plus an unbatched LSTM pass
  /// per inversion step. Scores are bitwise-identical to anomaly_score.
  std::vector<double> score_batch(std::span<const nn::Matrix> windows) const override;

  bool flags_from_score(const nn::Matrix& /*window*/, double score) const override {
    return score > threshold_;
  }

  std::string name() const override { return "MAD-GAN"; }

  /// Persists config, both nets' parameters, the fixed inversion start and
  /// the calibration scalars; a reloaded detector's DR-scores are
  /// bit-identical (the latent inversion is deterministic).
  void save(std::ostream& out) const override;
  void load(std::istream& in) override;

  /// Multivariate time-series windows (paper Appendix B: seq_len 12).
  InputGranularity granularity() const override { return InputGranularity::kWindow; }

  double threshold() const noexcept { return threshold_; }

  /// Window channel count (num_signals; known from construction).
  std::size_t input_width() const noexcept override { return config_.num_signals; }

  /// Score components, exposed for tests and diagnostics.
  double discrimination_score(const nn::Matrix& window) const;
  double reconstruction_error(const nn::Matrix& window) const;

  /// Generates one synthetic window from noise (diagnostics / examples).
  nn::Matrix generate(common::Rng& rng) const;

 private:
  struct Generator {
    nn::Lstm lstm;
    nn::Dense projection;
    Generator(const MadGanConfig& config, common::Rng& rng);
  };
  struct Discriminator {
    nn::Lstm lstm;
    nn::Dense head;
    Discriminator(const MadGanConfig& config, common::Rng& rng);
  };

  nn::Matrix sample_latent(common::Rng& rng) const;
  /// Both nets' parameters in a stable order (generator LSTM, generator
  /// projection, discriminator LSTM, discriminator head).
  nn::ParamRefs gan_parameters();
  static nn::Matrix generator_forward(const Generator& g, const nn::Matrix& z,
                                      nn::Lstm::Cache& lstm_cache,
                                      nn::Dense::Cache& proj_cache);
  static double discriminator_forward(const Discriminator& d, const nn::Matrix& x,
                                      nn::Lstm::Cache& lstm_cache,
                                      nn::Dense::Cache& head_cache);
  /// Backward through D from dLoss/dprob; returns dLoss/dx.
  static nn::Matrix discriminator_backward(Discriminator& d, double grad_prob,
                                           const nn::Lstm::Cache& lstm_cache,
                                           const nn::Dense::Cache& head_cache);

  MadGanConfig config_;
  common::Rng init_rng_;  // declared before the nets: deterministic init order
  Generator generator_;
  Discriminator discriminator_;
  nn::Matrix inversion_z0_;   // fixed inversion start -> deterministic scores
  double recon_reference_ = 1.0;
  double threshold_ = 0.5;
  bool fitted_ = false;
};

}  // namespace goodones::detect
