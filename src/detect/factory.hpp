// Detector factory: the framework iterates over detector kinds when
// reproducing the paper's figures; user code can also register the three
// built-ins by name.
#pragma once

#include <memory>

#include "detect/detector.hpp"
#include "detect/knn.hpp"
#include "detect/madgan.hpp"
#include "detect/ocsvm.hpp"

namespace goodones::detect {

enum class DetectorKind : std::uint8_t { kKnn, kOcsvm, kMadGan };

/// All detector configurations in one bundle (per-experiment settings).
struct DetectorSuiteConfig {
  KnnConfig knn;
  OcsvmConfig ocsvm;
  MadGanConfig madgan;
};

/// Builds a fresh, unfitted detector of the requested kind.
std::unique_ptr<AnomalyDetector> make_detector(DetectorKind kind,
                                               const DetectorSuiteConfig& config);

const char* to_string(DetectorKind kind) noexcept;

}  // namespace goodones::detect
