// Anomaly-detector interface shared by kNN, OneClassSVM and MAD-GAN.
//
// Detectors consume telemetry windows (seq_len x channels) in *scaled* units — the
// framework fits one global scaler so all training strategies compare
// fairly. Supervised detectors (kNN) also receive malicious windows from
// the defender's own attack simulation (framework step 1); unsupervised
// detectors ignore them.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/matrix.hpp"

namespace goodones::detect {

/// What one detector input represents. The paper's kNN and OneClassSVM
/// inspect individual telemetry samples (Fig. 5 marks single measurements
/// as TP/FN); MAD-GAN consumes whole multivariate windows (seq_len x
/// signals). The framework assembles training and evaluation sets
/// accordingly.
enum class InputGranularity : std::uint8_t { kSample, kWindow };

class AnomalyDetector {
 public:
  virtual ~AnomalyDetector() = default;

  /// Granularity of the matrices this detector expects. Sample-level
  /// detectors receive (1 x channels) matrices; window-level detectors
  /// receive (seq_len x channels).
  virtual InputGranularity granularity() const = 0;

  /// Trains the detector. `benign` must be non-empty; `malicious` may be
  /// empty (unsupervised detectors never read it).
  virtual void fit(const std::vector<nn::Matrix>& benign,
                   const std::vector<nn::Matrix>& malicious) = 0;

  /// Anomaly score, higher = more anomalous. Scale is detector-specific;
  /// only the induced ranking and `flags` are comparable across detectors.
  virtual double anomaly_score(const nn::Matrix& window) const = 0;

  /// Final decision: true = flagged as malicious. Requires a prior fit.
  virtual bool flags(const nn::Matrix& window) const = 0;

  /// Anomaly scores for a batch of windows, element i corresponding to
  /// windows[i]. The contract is strict: scores must be BITWISE identical to
  /// calling anomaly_score(windows[i]) one by one — batching is an execution
  /// strategy, never a semantic change — so callers (the serving path makes
  /// one score_batch call per entity per request) may mix the two paths
  /// freely. The default loops anomaly_score; override when amortizing work
  /// across the batch pays (MAD-GAN shares one batched latent inversion,
  /// kNN blocks its neighbor queries over the reference set).
  virtual std::vector<double> score_batch(std::span<const nn::Matrix> windows) const {
    std::vector<double> scores;
    scores.reserve(windows.size());
    for (const nn::Matrix& window : windows) scores.push_back(anomaly_score(window));
    return scores;
  }

  /// Final decision given `score` = anomaly_score(window), for hot paths
  /// that need both the score and the verdict (the serving path would
  /// otherwise pay MAD-GAN's latent inversion twice per window). Must
  /// agree with flags(window). The default recomputes via flags() —
  /// always correct; the built-ins override it with their threshold rule.
  virtual bool flags_from_score(const nn::Matrix& window, double score) const {
    (void)score;
    return flags(window);
  }

  virtual std::string name() const = 0;

  /// Flattened feature width of the inputs this fitted detector expects
  /// (columns for window-level detectors, flattened length for sample-level
  /// ones); 0 = unknown/unfitted. Lets loaders cross-check a deserialized
  /// detector against the domain schema it is about to serve.
  virtual std::size_t input_width() const noexcept { return 0; }

  /// Persists the fitted state (including the scoring-relevant config) so a
  /// reloaded detector scores bit-identically without refitting. Writers
  /// open with a per-kind tag, so loading the wrong detector kind fails
  /// loudly instead of misinterpreting bytes. The default throws
  /// common::PreconditionError: custom detectors opt into persistence by
  /// overriding both methods (all three built-ins do).
  virtual void save(std::ostream& out) const;

  /// Restores state written by save() of the same detector kind. Throws
  /// common::SerializationError on truncation, kind/tag mismatch or shape
  /// mismatch, leaving the detector untouched.
  virtual void load(std::istream& in);
};

}  // namespace goodones::detect
