// Interface of the victim system's main prediction DNN.
//
// The deployed prediction algorithm is confidential in real systems; each
// domain approximates it with a trained surrogate (the BGMS case study uses
// the bidirectional-LSTM forecaster of Rubin-Falcone et al.). Attack and
// risk-profiling code only depend on this interface, so other model
// families can be swapped in.
#pragma once

#include "nn/matrix.hpp"

namespace goodones::predict {

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Predicts the target signal (raw units) `horizon` steps past the window
  /// end. `raw_features` is a (seq_len x channels) telemetry window in raw
  /// units. Must be thread-safe for concurrent callers.
  virtual double predict(const nn::Matrix& raw_features) const = 0;

  /// Gradient of the prediction w.r.t. each raw input feature
  /// (seq_len x channels). Drives the gradient-guided attack variant.
  virtual nn::Matrix input_gradient(const nn::Matrix& raw_features) const = 0;
};

}  // namespace goodones::predict
