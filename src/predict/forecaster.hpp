// Interface of the BGMS's main prediction DNN.
//
// The deployed glucose-prediction algorithm is confidential in real systems;
// the paper (like us) approximates it with the bidirectional-LSTM
// forecaster of Rubin-Falcone et al. Attack and risk-profiling code only
// depend on this interface, so other model families can be swapped in.
#pragma once

#include "nn/matrix.hpp"

namespace goodones::predict {

class GlucoseForecaster {
 public:
  virtual ~GlucoseForecaster() = default;

  /// Predicts blood glucose (mg/dL) `horizon` steps past the window end.
  /// `raw_features` is a (seq_len x 4) telemetry window in raw units
  /// (mg/dL, U/h, U, g). Must be thread-safe for concurrent callers.
  virtual double predict(const nn::Matrix& raw_features) const = 0;

  /// Gradient of the predicted glucose w.r.t. each raw input feature
  /// (seq_len x 4). Drives the gradient-guided attack variant.
  virtual nn::Matrix input_gradient(const nn::Matrix& raw_features) const = 0;
};

}  // namespace goodones::predict
