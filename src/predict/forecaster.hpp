// Interface of the victim system's main prediction DNN.
//
// The deployed prediction algorithm is confidential in real systems; each
// domain approximates it with a trained surrogate (the BGMS case study uses
// the bidirectional-LSTM forecaster of Rubin-Falcone et al.). Attack and
// risk-profiling code only depend on this interface, so other model
// families can be swapped in.
#pragma once

#include <span>
#include <vector>

#include "nn/matrix.hpp"
#include "nn/simd.hpp"

namespace goodones::predict {

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Predicts the target signal (raw units) `horizon` steps past the window
  /// end. `raw_features` is a (seq_len x channels) telemetry window in raw
  /// units. Must be thread-safe for concurrent callers.
  virtual double predict(const nn::Matrix& raw_features) const = 0;

  /// Predicts a batch of windows at once; element i corresponds to
  /// raw_windows[i]. Greedy evasion searches and region-based defenses probe
  /// hundreds of near-identical windows — models that can amortize work
  /// across the batch (shared-prefix recurrent state, packed GEMMs) override
  /// this; the default simply loops over predict(). Results must match the
  /// scalar path. Must be thread-safe for concurrent callers.
  virtual std::vector<double> predict_batch(std::span<const nn::Matrix> raw_windows) const {
    std::vector<double> out;
    out.reserve(raw_windows.size());
    for (const nn::Matrix& w : raw_windows) out.push_back(predict(w));
    return out;
  }

  /// predict_batch with an explicit per-call numeric lane. Models that
  /// support approximation lanes (kMixed / kFast) honor `precision` for this
  /// call only, independent of any model-level scoring mode; the base
  /// default ignores it and runs the exact loop. Callers that probe in a
  /// fast lane re-verify their final answers through predict() /
  /// predict_batch(), which always stay exact.
  virtual std::vector<double> predict_batch(std::span<const nn::Matrix> raw_windows,
                                            nn::Precision /*precision*/) const {
    return predict_batch(raw_windows);
  }

  /// Zero-copy batched inference: the same contract as the value-span
  /// overloads, but the batch arrives as pointers into caller-owned storage
  /// (scoring-service request groups, column-store window gathers). Element
  /// i corresponds to *raw_windows[i]; results must match the scalar path.
  /// The default loops predict(); models with a real batch path override
  /// this alongside the value-span overloads.
  virtual std::vector<double> predict_batch(
      std::span<const nn::Matrix* const> raw_windows) const {
    std::vector<double> out;
    out.reserve(raw_windows.size());
    for (const nn::Matrix* w : raw_windows) out.push_back(predict(*w));
    return out;
  }

  /// Pointer-span batch with an explicit per-call numeric lane (see the
  /// value-span precision overload for lane semantics).
  virtual std::vector<double> predict_batch(std::span<const nn::Matrix* const> raw_windows,
                                            nn::Precision /*precision*/) const {
    return predict_batch(raw_windows);
  }

  /// Gradient of the prediction w.r.t. each raw input feature
  /// (seq_len x channels). Drives the gradient-guided attack variant.
  virtual nn::Matrix input_gradient(const nn::Matrix& raw_features) const = 0;
};

}  // namespace goodones::predict
