// Planning for batched inference over probe windows.
//
// Greedy evasion searches emit batches of candidate windows that are copies
// of one base window with a single timestep edited; back-to-front editing
// means long runs of leading rows are bitwise identical across the batch.
// The planner discovers that structure generically (no coupling to the
// attack) so BiLstmForecaster::predict_batch can snapshot recurrent state
// after the shared prefix and replay only the unshared tail per probe.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "nn/matrix.hpp"

namespace goodones::predict {

/// Shared row structure of a same-shape window batch.
struct BatchPlan {
  /// Leading rows bitwise-identical across every window.
  std::size_t shared_prefix = 0;
  /// Trailing rows bitwise-identical across every window. Counted over the
  /// rows after the shared prefix, so prefix + suffix never exceeds rows().
  std::size_t shared_suffix = 0;
};

/// Computes the shared-row plan of a batch of same-shape windows. A batch of
/// one window is fully shared (prefix == rows, suffix == 0).
BatchPlan plan_shared_rows(std::span<const nn::Matrix> windows);
/// Pointer-span variant: windows scattered across caller-owned storage
/// (request groups, column-store gathers) plan without being copied into a
/// contiguous vector first. Plans are identical to the value-span overload.
BatchPlan plan_shared_rows(std::span<const nn::Matrix* const> windows);

/// One shape-homogeneous slice of a heterogeneous probe batch.
struct ProbeGroup {
  std::vector<std::size_t> indices;  ///< positions in the original batch
  BatchPlan plan;                    ///< shared rows within this group
};

/// Groups a probe batch by (rows, cols) shape — batched recurrent execution
/// needs equal sequence lengths — and computes each group's shared-row plan.
/// Groups appear in first-seen order; indices within a group stay ascending.
std::vector<ProbeGroup> group_probes(std::span<const nn::Matrix> windows);
/// Pointer-span variant (same grouping, same plans).
std::vector<ProbeGroup> group_probes(std::span<const nn::Matrix* const> windows);

/// One prefix cluster inside a shape group: members that share enough
/// leading rows for a single PrefixState snapshot to cover them all.
struct ProbeCluster {
  std::vector<std::size_t> indices;  ///< positions in the original batch
  BatchPlan plan;                    ///< exact shared rows among the members
};

/// Splits one shape group (`indices`, all same shape) into prefix clusters.
/// A cross-window campaign batch merges probes of SEVERAL base windows: one
/// global shared prefix is usually zero, but per base window the probes
/// still share almost everything. Greedy pass: each window joins the first
/// existing cluster it shares at least one leading row with (against the
/// cluster's running common prefix), else starts its own; single-member
/// clusters are then merged into one residual cluster (its exact plan —
/// typically prefix 0 — makes the packed whole-sequence GEMM the fallback,
/// i.e. exactly the pre-clustering behavior). Cluster order: multi-member
/// clusters in first-seen order, residual last; member indices ascending.
std::vector<ProbeCluster> cluster_probes(std::span<const nn::Matrix> windows,
                                         std::span<const std::size_t> indices);
/// Pointer-span variant (same clustering, same plans).
std::vector<ProbeCluster> cluster_probes(std::span<const nn::Matrix* const> windows,
                                         std::span<const std::size_t> indices);

}  // namespace goodones::predict
