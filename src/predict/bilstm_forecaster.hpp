// Bidirectional-LSTM forecaster (the surrogate target model).
//
// Architecture: BiLSTM over the (seq_len x channels) telemetry window,
// last-timestep concatenated state -> tanh dense -> linear dense ->
// normalized target, inverse-scaled to raw units. Mirrors the
// personalized/aggregate BiLSTM models of Rubin-Falcone et al. that the
// paper attacks; the channel count and target channel come from the domain.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <mutex>
#include <vector>

#include "data/scaler.hpp"
#include "data/window.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "predict/forecaster.hpp"

namespace goodones::predict {

struct ForecasterConfig {
  std::size_t hidden = 24;        ///< LSTM units per direction
  std::size_t head_hidden = 16;   ///< width of the dense head
  std::size_t epochs = 6;
  std::size_t batch_size = 32;
  double learning_rate = 3e-3;
  double grad_clip = 1.0;         ///< global-norm gradient clipping
  /// Channel of the forecast target within the telemetry matrix (used for
  /// target scaling); the domain adapter sets it.
  std::size_t target_channel = 0;
  std::uint64_t seed = 7;
};

class BiLstmForecaster final : public Forecaster {
 public:
  /// Builds an untrained model; `scaler` must already be fitted on the
  /// intended training distribution (its feature count fixes the channel
  /// count of every window this model accepts).
  BiLstmForecaster(const ForecasterConfig& config, data::MinMaxScaler scaler);

  /// Trains on forecasting windows (raw units). Returns the final-epoch
  /// mean training MSE in *normalized* units.
  double train(const std::vector<data::Window>& windows);

  double predict(const nn::Matrix& raw_features) const override;

  /// True batched inference path: probes are grouped by shape, then split
  /// into prefix clusters (a cross-window campaign batch merges probes of
  /// several base windows, so one global prefix is useless but per-base
  /// prefixes are long). Each cluster's shared rows are consumed once —
  /// served from a trail cache that remembers the state after EVERY prefix
  /// row — and all cluster tails with equal prefix length run as one packed
  /// batch GEMM. Bit-compatible with the scalar predict() path under the
  /// default double precision.
  std::vector<double> predict_batch(std::span<const nn::Matrix> raw_windows) const override;

  /// Per-call precision override: identical batching, but the LSTM tails run
  /// in the requested lane regardless of the configured scoring precision.
  /// Campaign probes pass nn::Precision::kFast here while exact verification
  /// keeps using predict()/predict_batch() on the same shared const model.
  std::vector<double> predict_batch(std::span<const nn::Matrix> raw_windows,
                                    nn::Precision precision) const override;

  /// Zero-copy entry points: the batch arrives as pointers into caller-owned
  /// storage (scoring-service request groups, column-store gathers). These
  /// are the primary implementation — the value-span overloads delegate here
  /// — so results are bitwise-identical across all four entry points.
  std::vector<double> predict_batch(
      std::span<const nn::Matrix* const> raw_windows) const override;
  std::vector<double> predict_batch(std::span<const nn::Matrix* const> raw_windows,
                                    nn::Precision precision) const override;

  /// Numeric mode of predict_batch's LSTM tail math. kMixed scores against
  /// float32 weight mirrors with float64 activations/accumulation; kFast
  /// keeps double GEMMs but swaps the gate transcendentals for vectorized
  /// polynomials. Both are opt-in throughput lanes OUTSIDE the bitwise
  /// parity contract (predict(), gradients and training always run full
  /// double).
  void set_scoring_precision(nn::Precision precision);
  nn::Precision scoring_precision() const noexcept { return scoring_precision_; }

  nn::Matrix input_gradient(const nn::Matrix& raw_features) const override;

  /// RMSE in raw units over a window set (evaluation helper).
  double evaluate_rmse(const std::vector<data::Window>& windows) const;

  const data::MinMaxScaler& scaler() const noexcept { return scaler_; }
  const ForecasterConfig& config() const noexcept { return config_; }
  std::size_t num_channels() const noexcept { return scaler_.num_features(); }

  /// Model persistence for the artifact cache. Shapes must match on load.
  void save(const std::filesystem::path& path) const;
  /// Returns false if no file exists (leaves weights untouched).
  bool load(const std::filesystem::path& path);

  /// Versioned model artifact: architecture config + fitted scaler + all
  /// parameters in one stream. Unlike save()/load(), load_artifact needs no
  /// pre-built model of matching shape — the artifact is self-describing,
  /// which is what the serving-path ModelRegistry persists.
  void save_artifact(std::ostream& out) const;
  /// Reconstructs the full model (bit-identical predictions, no retraining).
  /// Throws common::SerializationError on malformed input.
  static BiLstmForecaster load_artifact(std::istream& in);

 private:
  nn::ParamRefs parameters();

  /// Forward in normalized space; fills caches and returns the scalar.
  double forward_normalized(const nn::Matrix& scaled, nn::BiLstm::Cache& lstm_cache,
                            nn::Dense::Cache& head1_cache,
                            nn::Dense::Cache& head2_cache) const;

  /// Forward-cell recurrent state after `prefix_rows` rows of `scaled`,
  /// served from (and recorded into) the prefix trail cache. Bit-identical
  /// to advance() over those rows from the zero state.
  nn::Lstm::PrefixState fwd_prefix_state(const nn::Matrix& scaled,
                                         std::size_t prefix_rows) const;
  /// Drops cached prefix trails and refreshes the mixed-precision weight
  /// mirrors; must run after anything that mutates the weights.
  void invalidate_scoring_state();

  /// Memo of forward-cell prefix trails, content-addressed by the scaled
  /// prefix rows. A greedy campaign probes the same base window at every
  /// edit position; successive batches hit the trail (the state after EVERY
  /// row) instead of re-advancing an ever-different prefix from scratch. A
  /// hit is validated bitwise against the cached rows, so it returns exactly
  /// the state advance() would recompute.
  struct PrefixCache {
    struct Entry {
      nn::Matrix rows;                           ///< cached scaled prefix rows
      std::vector<nn::Lstm::PrefixState> trail;  ///< trail[k] = state after k rows
    };
    static constexpr std::size_t kCapacity = 64;
    std::mutex mu;
    /// Kept in MRU order: most recently used at the back, eviction pops the
    /// front. Lookups scan backward and stop at the first full hit.
    std::vector<Entry> entries;

    PrefixCache() = default;
    // The cache is a memo, not model state: copies start cold (and the
    // mutex is not copyable anyway — input_gradient copies the model).
    PrefixCache(const PrefixCache&) {}
    PrefixCache& operator=(const PrefixCache&) { return *this; }
  };

  ForecasterConfig config_;
  data::MinMaxScaler scaler_;
  // Declared before the layers so member-initialization order guarantees a
  // deterministic weight-init stream derived from the config seed.
  common::Rng init_rng_;
  nn::BiLstm lstm_;
  nn::Dense head1_;
  nn::Dense head2_;
  nn::Precision scoring_precision_ = nn::Precision::kDouble;
  mutable PrefixCache prefix_cache_;
};

/// Fits the forecaster feature scaler on a training series, pinning the
/// target channel to the domain's physiological/operational range so all
/// models share one target scale (required for cross-entity risk
/// comparison).
data::MinMaxScaler fit_forecaster_scaler(const nn::Matrix& train_values,
                                         std::size_t target_channel,
                                         double target_min, double target_max);

}  // namespace goodones::predict
