// Bidirectional-LSTM glucose forecaster (target model of the case study).
//
// Architecture: BiLSTM over the (12 x 4) telemetry window, last-timestep
// concatenated state -> tanh dense -> linear dense -> normalized glucose,
// inverse-scaled to mg/dL. Mirrors the personalized/aggregate BiLSTM models
// of Rubin-Falcone et al. that the paper attacks.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "data/scaler.hpp"
#include "data/window.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "predict/forecaster.hpp"

namespace goodones::predict {

struct ForecasterConfig {
  std::size_t hidden = 24;        ///< LSTM units per direction
  std::size_t head_hidden = 16;   ///< width of the dense head
  std::size_t epochs = 6;
  std::size_t batch_size = 32;
  double learning_rate = 3e-3;
  double grad_clip = 1.0;         ///< global-norm gradient clipping
  std::uint64_t seed = 7;
};

class BiLstmForecaster final : public GlucoseForecaster {
 public:
  /// Builds an untrained model; `scaler` must already be fitted on the
  /// intended training distribution (4 telemetry channels).
  BiLstmForecaster(const ForecasterConfig& config, data::MinMaxScaler scaler);

  /// Trains on forecasting windows (raw units). Returns the final-epoch
  /// mean training MSE in *normalized* units.
  double train(const std::vector<data::Window>& windows);

  double predict(const nn::Matrix& raw_features) const override;
  nn::Matrix input_gradient(const nn::Matrix& raw_features) const override;

  /// RMSE in mg/dL over a window set (evaluation helper).
  double evaluate_rmse(const std::vector<data::Window>& windows) const;

  const data::MinMaxScaler& scaler() const noexcept { return scaler_; }
  const ForecasterConfig& config() const noexcept { return config_; }

  /// Model persistence for the artifact cache. Shapes must match on load.
  void save(const std::filesystem::path& path) const;
  /// Returns false if no file exists (leaves weights untouched).
  bool load(const std::filesystem::path& path);

 private:
  nn::ParamRefs parameters();

  /// Forward in normalized space; fills caches and returns the scalar.
  double forward_normalized(const nn::Matrix& scaled, nn::BiLstm::Cache& lstm_cache,
                            nn::Dense::Cache& head1_cache,
                            nn::Dense::Cache& head2_cache) const;

  ForecasterConfig config_;
  data::MinMaxScaler scaler_;
  // Declared before the layers so member-initialization order guarantees a
  // deterministic weight-init stream derived from the config seed.
  common::Rng init_rng_;
  nn::BiLstm lstm_;
  nn::Dense head1_;
  nn::Dense head2_;
};

/// Fits the forecaster feature scaler on a training series, pinning the CGM
/// channel to the physiological range [40, 499] mg/dL so all models share
/// one glucose scale (required for cross-patient risk comparison).
data::MinMaxScaler fit_forecaster_scaler(const nn::Matrix& train_values);

}  // namespace goodones::predict
