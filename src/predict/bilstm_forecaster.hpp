// Bidirectional-LSTM forecaster (the surrogate target model).
//
// Architecture: BiLSTM over the (seq_len x channels) telemetry window,
// last-timestep concatenated state -> tanh dense -> linear dense ->
// normalized target, inverse-scaled to raw units. Mirrors the
// personalized/aggregate BiLSTM models of Rubin-Falcone et al. that the
// paper attacks; the channel count and target channel come from the domain.
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <vector>

#include "data/scaler.hpp"
#include "data/window.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "predict/forecaster.hpp"

namespace goodones::predict {

struct ForecasterConfig {
  std::size_t hidden = 24;        ///< LSTM units per direction
  std::size_t head_hidden = 16;   ///< width of the dense head
  std::size_t epochs = 6;
  std::size_t batch_size = 32;
  double learning_rate = 3e-3;
  double grad_clip = 1.0;         ///< global-norm gradient clipping
  /// Channel of the forecast target within the telemetry matrix (used for
  /// target scaling); the domain adapter sets it.
  std::size_t target_channel = 0;
  std::uint64_t seed = 7;
};

class BiLstmForecaster final : public Forecaster {
 public:
  /// Builds an untrained model; `scaler` must already be fitted on the
  /// intended training distribution (its feature count fixes the channel
  /// count of every window this model accepts).
  BiLstmForecaster(const ForecasterConfig& config, data::MinMaxScaler scaler);

  /// Trains on forecasting windows (raw units). Returns the final-epoch
  /// mean training MSE in *normalized* units.
  double train(const std::vector<data::Window>& windows);

  double predict(const nn::Matrix& raw_features) const override;

  /// True batched inference path: probes are grouped by shape, rows shared
  /// across a group are consumed once (the BiLSTM snapshots recurrent state
  /// after the common prefix), and the remaining per-probe work runs as
  /// packed batch GEMMs. Bit-compatible with the scalar predict() path.
  std::vector<double> predict_batch(std::span<const nn::Matrix> raw_windows) const override;

  nn::Matrix input_gradient(const nn::Matrix& raw_features) const override;

  /// RMSE in raw units over a window set (evaluation helper).
  double evaluate_rmse(const std::vector<data::Window>& windows) const;

  const data::MinMaxScaler& scaler() const noexcept { return scaler_; }
  const ForecasterConfig& config() const noexcept { return config_; }
  std::size_t num_channels() const noexcept { return scaler_.num_features(); }

  /// Model persistence for the artifact cache. Shapes must match on load.
  void save(const std::filesystem::path& path) const;
  /// Returns false if no file exists (leaves weights untouched).
  bool load(const std::filesystem::path& path);

  /// Versioned model artifact: architecture config + fitted scaler + all
  /// parameters in one stream. Unlike save()/load(), load_artifact needs no
  /// pre-built model of matching shape — the artifact is self-describing,
  /// which is what the serving-path ModelRegistry persists.
  void save_artifact(std::ostream& out) const;
  /// Reconstructs the full model (bit-identical predictions, no retraining).
  /// Throws common::SerializationError on malformed input.
  static BiLstmForecaster load_artifact(std::istream& in);

 private:
  nn::ParamRefs parameters();

  /// Forward in normalized space; fills caches and returns the scalar.
  double forward_normalized(const nn::Matrix& scaled, nn::BiLstm::Cache& lstm_cache,
                            nn::Dense::Cache& head1_cache,
                            nn::Dense::Cache& head2_cache) const;

  ForecasterConfig config_;
  data::MinMaxScaler scaler_;
  // Declared before the layers so member-initialization order guarantees a
  // deterministic weight-init stream derived from the config seed.
  common::Rng init_rng_;
  nn::BiLstm lstm_;
  nn::Dense head1_;
  nn::Dense head2_;
};

/// Fits the forecaster feature scaler on a training series, pinning the
/// target channel to the domain's physiological/operational range so all
/// models share one target scale (required for cross-entity risk
/// comparison).
data::MinMaxScaler fit_forecaster_scaler(const nn::Matrix& train_values,
                                         std::size_t target_channel,
                                         double target_min, double target_max);

}  // namespace goodones::predict
