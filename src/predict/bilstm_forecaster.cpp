#include "predict/bilstm_forecaster.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "predict/batch_planner.hpp"

namespace goodones::predict {

namespace {

/// RNG used only for weight initialization, derived from the config seed.
common::Rng init_rng(const ForecasterConfig& config) {
  return common::Rng(config.seed * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL);
}

}  // namespace

data::MinMaxScaler fit_forecaster_scaler(const nn::Matrix& train_values,
                                         std::size_t target_channel,
                                         double target_min, double target_max) {
  data::MinMaxScaler scaler;
  scaler.fit(train_values);
  scaler.set_column_range(target_channel, target_min, target_max);
  return scaler;
}

BiLstmForecaster::BiLstmForecaster(const ForecasterConfig& config, data::MinMaxScaler scaler)
    : config_(config),
      scaler_(std::move(scaler)),
      init_rng_(init_rng(config)),
      lstm_(scaler_.num_features(), config.hidden, init_rng_),
      head1_(2 * config.hidden, config.head_hidden, nn::Activation::kTanh, init_rng_),
      head2_(config.head_hidden, 1, nn::Activation::kLinear, init_rng_) {
  GO_EXPECTS(scaler_.fitted());
  GO_EXPECTS(config_.target_channel < scaler_.num_features());
}

nn::ParamRefs BiLstmForecaster::parameters() {
  nn::ParamRefs params = lstm_.parameters();
  for (auto* p : head1_.parameters()) params.push_back(p);
  for (auto* p : head2_.parameters()) params.push_back(p);
  return params;
}

double BiLstmForecaster::forward_normalized(const nn::Matrix& scaled,
                                            nn::BiLstm::Cache& lstm_cache,
                                            nn::Dense::Cache& head1_cache,
                                            nn::Dense::Cache& head2_cache) const {
  const nn::Matrix hidden = lstm_.forward_cached(scaled, lstm_cache);
  // Dense head consumes only the final timestep's concatenated state.
  nn::Matrix last(1, hidden.cols());
  const auto src = hidden.row(hidden.rows() - 1);
  std::copy(src.begin(), src.end(), last.row(0).begin());
  const nn::Matrix h1 = head1_.forward_cached(last, head1_cache);
  const nn::Matrix out = head2_.forward_cached(h1, head2_cache);
  return out(0, 0);
}

double BiLstmForecaster::predict(const nn::Matrix& raw_features) const {
  GO_EXPECTS(raw_features.cols() == scaler_.num_features());
  nn::BiLstm::Cache lstm_cache;
  nn::Dense::Cache c1;
  nn::Dense::Cache c2;
  const double normalized =
      forward_normalized(scaler_.transform(raw_features), lstm_cache, c1, c2);
  return scaler_.inverse_transform_value(normalized, config_.target_channel);
}

std::vector<double> BiLstmForecaster::predict_batch(
    std::span<const nn::Matrix> raw_windows) const {
  std::vector<double> out(raw_windows.size());
  for (const ProbeGroup& group : group_probes(raw_windows)) {
    std::vector<nn::Matrix> scaled;
    scaled.reserve(group.indices.size());
    for (const std::size_t idx : group.indices) {
      GO_EXPECTS(raw_windows[idx].cols() == scaler_.num_features());
      scaled.push_back(scaler_.transform(raw_windows[idx]));
    }
    // Identical raw rows scale to identical rows, so the plan computed on
    // the raw windows is valid for the scaled ones.
    const nn::Matrix states = lstm_.final_states_batch(scaled, group.plan.shared_prefix,
                                                       group.plan.shared_suffix);
    const nn::Matrix h1 = head1_.forward(states);
    const nn::Matrix preds = head2_.forward(h1);
    for (std::size_t i = 0; i < group.indices.size(); ++i) {
      out[group.indices[i]] =
          scaler_.inverse_transform_value(preds(i, 0), config_.target_channel);
    }
  }
  return out;
}

nn::Matrix BiLstmForecaster::input_gradient(const nn::Matrix& raw_features) const {
  GO_EXPECTS(raw_features.cols() == scaler_.num_features());
  // The backward pass accumulates parameter gradients; run it on a scratch
  // copy of the model so this method stays const and thread-safe.
  BiLstmForecaster scratch(*this);

  nn::BiLstm::Cache lstm_cache;
  nn::Dense::Cache c1;
  nn::Dense::Cache c2;
  const nn::Matrix scaled = scaler_.transform(raw_features);
  scratch.forward_normalized(scaled, lstm_cache, c1, c2);

  nn::Matrix grad_out(1, 1);
  grad_out(0, 0) = 1.0;  // d(normalized prediction)/d(normalized prediction)
  const nn::Matrix g1 = scratch.head2_.backward(grad_out, c2);
  const nn::Matrix g_last = scratch.head1_.backward(g1, c1);

  nn::Matrix grad_hidden(scaled.rows(), 2 * config_.hidden);
  std::copy(g_last.row(0).begin(), g_last.row(0).end(),
            grad_hidden.row(scaled.rows() - 1).begin());
  nn::Matrix dx_scaled = scratch.lstm_.backward(grad_hidden, lstm_cache);

  // Chain through the scalers: prediction is inverse-scaled by the target
  // range; inputs were forward-scaled by each channel's range.
  const double target_range = scaler_.column_max(config_.target_channel) -
                              scaler_.column_min(config_.target_channel);
  nn::Matrix dx_raw(dx_scaled.rows(), dx_scaled.cols());
  for (std::size_t c = 0; c < scaler_.num_features(); ++c) {
    const double channel_range = scaler_.column_max(c) - scaler_.column_min(c);
    const double factor = channel_range > 0.0 ? target_range / channel_range : 0.0;
    for (std::size_t t = 0; t < dx_scaled.rows(); ++t) {
      dx_raw(t, c) = dx_scaled(t, c) * factor;
    }
  }
  return dx_raw;
}

double BiLstmForecaster::train(const std::vector<data::Window>& windows) {
  GO_EXPECTS(!windows.empty());
  GO_EXPECTS(config_.epochs > 0 && config_.batch_size > 0);

  // Pre-scale features and targets once.
  std::vector<nn::Matrix> scaled;
  std::vector<double> targets;
  scaled.reserve(windows.size());
  targets.reserve(windows.size());
  for (const auto& w : windows) {
    scaled.push_back(scaler_.transform(w.features));
    targets.push_back(scaler_.transform_value(w.target_value, config_.target_channel));
  }

  const nn::ParamRefs params = parameters();
  nn::Adam optimizer(config_.learning_rate);
  common::Rng shuffle_rng(config_.seed ^ 0xA5A5A5A5DEADBEEFULL);

  std::vector<std::size_t> order(windows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  double final_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t in_batch = 0;

    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      const std::size_t i = order[pos];
      nn::BiLstm::Cache lstm_cache;
      nn::Dense::Cache c1;
      nn::Dense::Cache c2;
      const double pred = forward_normalized(scaled[i], lstm_cache, c1, c2);

      const double diff = pred - targets[i];
      epoch_loss += diff * diff;

      nn::Matrix grad_out(1, 1);
      grad_out(0, 0) = 2.0 * diff;  // d(squared error)/d(pred)
      const nn::Matrix g1 = head2_.backward(grad_out, c2);
      const nn::Matrix g_last = head1_.backward(g1, c1);
      nn::Matrix grad_hidden(scaled[i].rows(), 2 * config_.hidden);
      std::copy(g_last.row(0).begin(), g_last.row(0).end(),
                grad_hidden.row(scaled[i].rows() - 1).begin());
      lstm_.backward(grad_hidden, lstm_cache);

      if (++in_batch == config_.batch_size || pos + 1 == order.size()) {
        // Average the accumulated gradients over the batch, clip, step.
        const double inv = 1.0 / static_cast<double>(in_batch);
        for (auto* p : params) p->grad *= inv;
        nn::clip_global_grad_norm(params, config_.grad_clip);
        optimizer.step_and_zero(params);
        in_batch = 0;
      }
    }
    final_epoch_loss = epoch_loss / static_cast<double>(order.size());
  }
  return final_epoch_loss;
}

double BiLstmForecaster::evaluate_rmse(const std::vector<data::Window>& windows) const {
  GO_EXPECTS(!windows.empty());
  double sum = 0.0;
  for (const auto& w : windows) {
    const double diff = predict(w.features) - w.target_value;
    sum += diff * diff;
  }
  return std::sqrt(sum / static_cast<double>(windows.size()));
}

void BiLstmForecaster::save(const std::filesystem::path& path) const {
  BiLstmForecaster& self = const_cast<BiLstmForecaster&>(*this);
  nn::save_parameters(self.parameters(), path);
}

bool BiLstmForecaster::load(const std::filesystem::path& path) {
  return nn::load_parameters(parameters(), path);
}

namespace {
constexpr std::uint32_t kForecasterTag = 0x464F5243;  // "FORC"
}  // namespace

void BiLstmForecaster::save_artifact(std::ostream& out) const {
  nn::write_u32(out, kForecasterTag);
  nn::write_u64(out, config_.hidden);
  nn::write_u64(out, config_.head_hidden);
  nn::write_u64(out, config_.epochs);
  nn::write_u64(out, config_.batch_size);
  nn::write_f64(out, config_.learning_rate);
  nn::write_f64(out, config_.grad_clip);
  nn::write_u64(out, config_.target_channel);
  nn::write_u64(out, config_.seed);
  scaler_.save(out);
  BiLstmForecaster& self = const_cast<BiLstmForecaster&>(*this);
  nn::write_parameters(out, self.parameters());
}

BiLstmForecaster BiLstmForecaster::load_artifact(std::istream& in) {
  nn::expect_u32(in, kForecasterTag, "forecaster tag");
  ForecasterConfig config;
  config.hidden = nn::read_u64(in, "forecaster hidden");
  config.head_hidden = nn::read_u64(in, "forecaster head hidden");
  config.epochs = nn::read_u64(in, "forecaster epochs");
  config.batch_size = nn::read_u64(in, "forecaster batch size");
  config.learning_rate = nn::read_f64(in, "forecaster learning rate");
  config.grad_clip = nn::read_f64(in, "forecaster grad clip");
  config.target_channel = nn::read_u64(in, "forecaster target channel");
  config.seed = nn::read_u64(in, "forecaster seed");
  data::MinMaxScaler scaler;
  scaler.load(in);
  if (!scaler.fitted() || config.hidden == 0 || config.head_hidden == 0 ||
      config.target_channel >= scaler.num_features()) {
    throw common::SerializationError("forecaster artifact carries an invalid config");
  }
  BiLstmForecaster model(config, std::move(scaler));
  nn::read_parameters(in, model.parameters());
  return model;
}

}  // namespace goodones::predict
