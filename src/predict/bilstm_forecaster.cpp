#include "predict/bilstm_forecaster.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "predict/batch_planner.hpp"

namespace goodones::predict {

namespace {

/// RNG used only for weight initialization, derived from the config seed.
common::Rng init_rng(const ForecasterConfig& config) {
  return common::Rng(config.seed * 0xD1342543DE82EF95ULL + 0x2545F4914F6CDD1DULL);
}

}  // namespace

data::MinMaxScaler fit_forecaster_scaler(const nn::Matrix& train_values,
                                         std::size_t target_channel,
                                         double target_min, double target_max) {
  data::MinMaxScaler scaler;
  scaler.fit(train_values);
  scaler.set_column_range(target_channel, target_min, target_max);
  return scaler;
}

BiLstmForecaster::BiLstmForecaster(const ForecasterConfig& config, data::MinMaxScaler scaler)
    : config_(config),
      scaler_(std::move(scaler)),
      init_rng_(init_rng(config)),
      lstm_(scaler_.num_features(), config.hidden, init_rng_),
      head1_(2 * config.hidden, config.head_hidden, nn::Activation::kTanh, init_rng_),
      head2_(config.head_hidden, 1, nn::Activation::kLinear, init_rng_) {
  GO_EXPECTS(scaler_.fitted());
  GO_EXPECTS(config_.target_channel < scaler_.num_features());
}

nn::ParamRefs BiLstmForecaster::parameters() {
  nn::ParamRefs params = lstm_.parameters();
  for (auto* p : head1_.parameters()) params.push_back(p);
  for (auto* p : head2_.parameters()) params.push_back(p);
  return params;
}

double BiLstmForecaster::forward_normalized(const nn::Matrix& scaled,
                                            nn::BiLstm::Cache& lstm_cache,
                                            nn::Dense::Cache& head1_cache,
                                            nn::Dense::Cache& head2_cache) const {
  const nn::Matrix hidden = lstm_.forward_cached(scaled, lstm_cache);
  // Dense head consumes only the final timestep's concatenated state.
  nn::Matrix last(1, hidden.cols());
  const auto src = hidden.row(hidden.rows() - 1);
  std::copy(src.begin(), src.end(), last.row(0).begin());
  const nn::Matrix h1 = head1_.forward_cached(last, head1_cache);
  const nn::Matrix out = head2_.forward_cached(h1, head2_cache);
  return out(0, 0);
}

double BiLstmForecaster::predict(const nn::Matrix& raw_features) const {
  GO_EXPECTS(raw_features.cols() == scaler_.num_features());
  nn::BiLstm::Cache lstm_cache;
  nn::Dense::Cache c1;
  nn::Dense::Cache c2;
  const double normalized =
      forward_normalized(scaler_.transform(raw_features), lstm_cache, c1, c2);
  return scaler_.inverse_transform_value(normalized, config_.target_channel);
}

std::vector<double> BiLstmForecaster::predict_batch(
    std::span<const nn::Matrix> raw_windows) const {
  return predict_batch(raw_windows, scoring_precision_);
}

std::vector<double> BiLstmForecaster::predict_batch(
    std::span<const nn::Matrix> raw_windows, nn::Precision precision) const {
  // Delegate to the pointer-span primary: one pointer per window is noise
  // next to the GEMMs, and a single implementation keeps all entry points
  // bitwise-identical.
  std::vector<const nn::Matrix*> ptrs;
  ptrs.reserve(raw_windows.size());
  for (const nn::Matrix& w : raw_windows) ptrs.push_back(&w);
  return predict_batch(std::span<const nn::Matrix* const>(ptrs), precision);
}

std::vector<double> BiLstmForecaster::predict_batch(
    std::span<const nn::Matrix* const> raw_windows) const {
  return predict_batch(raw_windows, scoring_precision_);
}

std::vector<double> BiLstmForecaster::predict_batch(
    std::span<const nn::Matrix* const> raw_windows, nn::Precision precision) const {
  // kMixed consumes the float32 weight mirrors, which only
  // set_scoring_precision(kMixed) / invalidate_scoring_state() refresh — a
  // per-call kMixed request is only valid on a model already configured for
  // it. kFast needs no mirrors and can be requested on any model.
  GO_EXPECTS(precision != nn::Precision::kMixed ||
             scoring_precision_ == nn::Precision::kMixed);
  std::vector<double> out(raw_windows.size());
  if (raw_windows.empty()) return out;

  // Scale everything once. Identical raw rows scale to identical rows, so
  // plans computed on the raw windows hold for the scaled ones.
  std::vector<nn::Matrix> scaled;
  scaled.reserve(raw_windows.size());
  for (const nn::Matrix* w : raw_windows) {
    GO_EXPECTS(w->cols() == scaler_.num_features());
    scaled.push_back(scaler_.transform(*w));
  }

  const std::size_t h = config_.hidden;
  nn::Matrix states(raw_windows.size(), 2 * h);
  const nn::Lstm& fwd_cell = lstm_.forward_cell();
  const nn::Lstm& bwd_cell = lstm_.backward_cell();

  for (const ProbeGroup& group : group_probes(raw_windows)) {
    const std::size_t steps = raw_windows[group.indices.front()]->rows();
    const std::vector<ProbeCluster> clusters = cluster_probes(raw_windows, group.indices);

    // Forward cell: resolve each cluster's prefix snapshot from the trail
    // cache, then merge all clusters with EQUAL prefix length into one
    // packed tail batch (run_batch_multi takes per-sequence starts, so one
    // GEMM spans several base windows' probe sets).
    std::vector<nn::Lstm::PrefixState> cluster_starts;
    cluster_starts.reserve(clusters.size());
    for (const ProbeCluster& cluster : clusters) {
      cluster_starts.push_back(
          fwd_prefix_state(scaled[cluster.indices.front()], cluster.plan.shared_prefix));
    }
    std::vector<bool> ran(clusters.size(), false);
    for (std::size_t c = 0; c < clusters.size(); ++c) {
      if (ran[c]) continue;
      const std::size_t prefix = clusters[c].plan.shared_prefix;
      std::vector<const nn::Matrix*> seqs;
      std::vector<const nn::Lstm::PrefixState*> starts;
      std::vector<std::size_t> members;  // original batch index per packed row
      for (std::size_t q = c; q < clusters.size(); ++q) {
        if (ran[q] || clusters[q].plan.shared_prefix != prefix) continue;
        ran[q] = true;
        for (const std::size_t idx : clusters[q].indices) {
          seqs.push_back(&scaled[idx]);
          starts.push_back(&cluster_starts[q]);
          members.push_back(idx);
        }
      }
      const nn::Matrix h_fwd = fwd_cell.run_batch_multi(seqs, starts, prefix, precision);
      for (std::size_t i = 0; i < members.size(); ++i) {
        std::copy(h_fwd.row(i).begin(), h_fwd.row(i).end(),
                  states.row(members[i]).begin());
      }
    }

    // Backward cell: the scalar path's last aligned output row is the state
    // after the FIRST reversed step, which consumes only the final row —
    // one distinct row per suffix-sharing cluster, all fused into a single
    // first-step batch.
    std::size_t distinct = 0;
    for (const ProbeCluster& cluster : clusters) {
      distinct += cluster.plan.shared_suffix >= 1 ? 1 : cluster.indices.size();
    }
    nn::Matrix last_rows(distinct, scaled.front().cols());
    std::vector<std::pair<std::size_t, std::size_t>> scatter;  // (batch idx, packed row)
    scatter.reserve(group.indices.size());
    std::size_t next_row = 0;
    for (const ProbeCluster& cluster : clusters) {
      if (cluster.plan.shared_suffix >= 1) {
        const auto src = scaled[cluster.indices.front()].row(steps - 1);
        std::copy(src.begin(), src.end(), last_rows.row(next_row).begin());
        for (const std::size_t idx : cluster.indices) scatter.emplace_back(idx, next_row);
        ++next_row;
      } else {
        for (const std::size_t idx : cluster.indices) {
          const auto src = scaled[idx].row(steps - 1);
          std::copy(src.begin(), src.end(), last_rows.row(next_row).begin());
          scatter.emplace_back(idx, next_row);
          ++next_row;
        }
      }
    }
    const nn::Matrix h_bwd = bwd_cell.first_step_batch(last_rows, precision);
    for (const auto& [idx, row] : scatter) {
      std::copy(h_bwd.row(row).begin(), h_bwd.row(row).end(),
                states.row(idx).begin() + static_cast<std::ptrdiff_t>(h));
    }
  }

  // One dense-head pass over the whole batch (rows are independent, so this
  // is bit-identical to per-group head calls).
  const nn::Matrix h1 = head1_.forward(states);
  const nn::Matrix preds = head2_.forward(h1);
  for (std::size_t i = 0; i < raw_windows.size(); ++i) {
    out[i] = scaler_.inverse_transform_value(preds(i, 0), config_.target_channel);
  }
  return out;
}

nn::Lstm::PrefixState BiLstmForecaster::fwd_prefix_state(const nn::Matrix& scaled,
                                                         std::size_t prefix_rows) const {
  const nn::Lstm& cell = lstm_.forward_cell();
  if (prefix_rows == 0) return cell.initial_state();
  const std::size_t cols = scaled.cols();

  const auto match_len = [&](const PrefixCache::Entry& entry) {
    const std::size_t limit = std::min<std::size_t>(prefix_rows, entry.rows.rows());
    std::size_t m = 0;
    while (m < limit) {
      const auto a = entry.rows.row(m);
      const auto b = scaled.row(m);
      if (!std::equal(a.begin(), a.end(), b.begin())) break;
      ++m;
    }
    return m;
  };

  std::unique_lock lock(prefix_cache_.mu);
  auto& entries = prefix_cache_.entries;
  // Scan most-recent-first (MRU order, back of the vector) and stop at the
  // first full hit: successive greedy rounds re-query a prefix published
  // within the last few rounds, while stale same-window entries share long
  // prefixes with the query and are expensive to deep-compare for no gain.
  std::size_t best = entries.size();
  std::size_t best_match = 0;
  for (std::size_t e = entries.size(); e-- > 0;) {
    const std::size_t m = match_len(entries[e]);
    if (m > best_match) {
      best_match = m;
      best = e;
      if (best_match == prefix_rows) break;
    }
  }
  // Move a used entry to the MRU back slot; returns its new index.
  const auto touch = [&entries](std::size_t e) {
    if (e + 1 != entries.size()) {
      std::rotate(entries.begin() + static_cast<std::ptrdiff_t>(e),
                  entries.begin() + static_cast<std::ptrdiff_t>(e) + 1, entries.end());
      e = entries.size() - 1;
    }
    return e;
  };
  if (best_match == prefix_rows) {
    return entries[touch(best)].trail[prefix_rows];
  }

  // Partial (or no) hit: copy the matched trail head, advance the remaining
  // rows outside the lock, then publish the longer trail as a new entry.
  std::vector<nn::Lstm::PrefixState> trail;
  trail.reserve(prefix_rows + 1);
  if (best < entries.size()) {
    const auto& src = entries[best].trail;
    trail.assign(src.begin(),
                 src.begin() + static_cast<std::ptrdiff_t>(best_match) + 1);
    touch(best);
  } else {
    trail.push_back(cell.initial_state());
  }
  lock.unlock();

  nn::Lstm::PrefixState state = trail.back();
  nn::Matrix rest(prefix_rows - best_match, cols);
  for (std::size_t t = 0; t < rest.rows(); ++t) {
    const auto src = scaled.row(best_match + t);
    std::copy(src.begin(), src.end(), rest.row(t).begin());
  }
  cell.advance_recording(state, rest, trail);

  PrefixCache::Entry entry;
  entry.rows = nn::Matrix(prefix_rows, cols);
  for (std::size_t t = 0; t < prefix_rows; ++t) {
    const auto src = scaled.row(t);
    std::copy(src.begin(), src.end(), entry.rows.row(t).begin());
  }
  entry.trail = std::move(trail);

  lock.lock();
  if (entries.size() >= PrefixCache::kCapacity) {
    entries.erase(entries.begin());  // MRU order: the front is the LRU victim
  }
  entries.push_back(std::move(entry));
  return state;
}

void BiLstmForecaster::set_scoring_precision(nn::Precision precision) {
  scoring_precision_ = precision;
  if (precision == nn::Precision::kMixed) {
    lstm_.forward_cell().sync_mixed_weights();
    lstm_.backward_cell().sync_mixed_weights();
  }
}

void BiLstmForecaster::invalidate_scoring_state() {
  {
    const std::lock_guard lock(prefix_cache_.mu);
    prefix_cache_.entries.clear();
  }
  if (scoring_precision_ == nn::Precision::kMixed) {
    lstm_.forward_cell().sync_mixed_weights();
    lstm_.backward_cell().sync_mixed_weights();
  }
}

nn::Matrix BiLstmForecaster::input_gradient(const nn::Matrix& raw_features) const {
  GO_EXPECTS(raw_features.cols() == scaler_.num_features());
  // The backward pass accumulates parameter gradients; run it on a scratch
  // copy of the model so this method stays const and thread-safe.
  BiLstmForecaster scratch(*this);

  nn::BiLstm::Cache lstm_cache;
  nn::Dense::Cache c1;
  nn::Dense::Cache c2;
  const nn::Matrix scaled = scaler_.transform(raw_features);
  scratch.forward_normalized(scaled, lstm_cache, c1, c2);

  nn::Matrix grad_out(1, 1);
  grad_out(0, 0) = 1.0;  // d(normalized prediction)/d(normalized prediction)
  const nn::Matrix g1 = scratch.head2_.backward(grad_out, c2);
  const nn::Matrix g_last = scratch.head1_.backward(g1, c1);

  nn::Matrix grad_hidden(scaled.rows(), 2 * config_.hidden);
  std::copy(g_last.row(0).begin(), g_last.row(0).end(),
            grad_hidden.row(scaled.rows() - 1).begin());
  nn::Matrix dx_scaled = scratch.lstm_.backward(grad_hidden, lstm_cache);

  // Chain through the scalers: prediction is inverse-scaled by the target
  // range; inputs were forward-scaled by each channel's range.
  const double target_range = scaler_.column_max(config_.target_channel) -
                              scaler_.column_min(config_.target_channel);
  nn::Matrix dx_raw(dx_scaled.rows(), dx_scaled.cols());
  for (std::size_t c = 0; c < scaler_.num_features(); ++c) {
    const double channel_range = scaler_.column_max(c) - scaler_.column_min(c);
    const double factor = channel_range > 0.0 ? target_range / channel_range : 0.0;
    for (std::size_t t = 0; t < dx_scaled.rows(); ++t) {
      dx_raw(t, c) = dx_scaled(t, c) * factor;
    }
  }
  return dx_raw;
}

double BiLstmForecaster::train(const std::vector<data::Window>& windows) {
  GO_EXPECTS(!windows.empty());
  GO_EXPECTS(config_.epochs > 0 && config_.batch_size > 0);

  // Pre-scale features and targets once.
  std::vector<nn::Matrix> scaled;
  std::vector<double> targets;
  scaled.reserve(windows.size());
  targets.reserve(windows.size());
  for (const auto& w : windows) {
    scaled.push_back(scaler_.transform(w.features));
    targets.push_back(scaler_.transform_value(w.target_value, config_.target_channel));
  }

  const nn::ParamRefs params = parameters();
  nn::Adam optimizer(config_.learning_rate);
  common::Rng shuffle_rng(config_.seed ^ 0xA5A5A5A5DEADBEEFULL);

  std::vector<std::size_t> order(windows.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  double final_epoch_loss = 0.0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t in_batch = 0;

    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      const std::size_t i = order[pos];
      nn::BiLstm::Cache lstm_cache;
      nn::Dense::Cache c1;
      nn::Dense::Cache c2;
      const double pred = forward_normalized(scaled[i], lstm_cache, c1, c2);

      const double diff = pred - targets[i];
      epoch_loss += diff * diff;

      nn::Matrix grad_out(1, 1);
      grad_out(0, 0) = 2.0 * diff;  // d(squared error)/d(pred)
      const nn::Matrix g1 = head2_.backward(grad_out, c2);
      const nn::Matrix g_last = head1_.backward(g1, c1);
      nn::Matrix grad_hidden(scaled[i].rows(), 2 * config_.hidden);
      std::copy(g_last.row(0).begin(), g_last.row(0).end(),
                grad_hidden.row(scaled[i].rows() - 1).begin());
      lstm_.backward(grad_hidden, lstm_cache);

      if (++in_batch == config_.batch_size || pos + 1 == order.size()) {
        // Average the accumulated gradients over the batch, clip, step.
        const double inv = 1.0 / static_cast<double>(in_batch);
        for (auto* p : params) p->grad *= inv;
        nn::clip_global_grad_norm(params, config_.grad_clip);
        optimizer.step_and_zero(params);
        in_batch = 0;
      }
    }
    final_epoch_loss = epoch_loss / static_cast<double>(order.size());
  }
  invalidate_scoring_state();
  return final_epoch_loss;
}

double BiLstmForecaster::evaluate_rmse(const std::vector<data::Window>& windows) const {
  GO_EXPECTS(!windows.empty());
  double sum = 0.0;
  for (const auto& w : windows) {
    const double diff = predict(w.features) - w.target_value;
    sum += diff * diff;
  }
  return std::sqrt(sum / static_cast<double>(windows.size()));
}

void BiLstmForecaster::save(const std::filesystem::path& path) const {
  BiLstmForecaster& self = const_cast<BiLstmForecaster&>(*this);
  nn::save_parameters(self.parameters(), path);
}

bool BiLstmForecaster::load(const std::filesystem::path& path) {
  const bool loaded = nn::load_parameters(parameters(), path);
  if (loaded) invalidate_scoring_state();
  return loaded;
}

namespace {
constexpr std::uint32_t kForecasterTag = 0x464F5243;  // "FORC"
}  // namespace

void BiLstmForecaster::save_artifact(std::ostream& out) const {
  nn::write_u32(out, kForecasterTag);
  nn::write_u64(out, config_.hidden);
  nn::write_u64(out, config_.head_hidden);
  nn::write_u64(out, config_.epochs);
  nn::write_u64(out, config_.batch_size);
  nn::write_f64(out, config_.learning_rate);
  nn::write_f64(out, config_.grad_clip);
  nn::write_u64(out, config_.target_channel);
  nn::write_u64(out, config_.seed);
  scaler_.save(out);
  BiLstmForecaster& self = const_cast<BiLstmForecaster&>(*this);
  nn::write_parameters(out, self.parameters());
}

BiLstmForecaster BiLstmForecaster::load_artifact(std::istream& in) {
  nn::expect_u32(in, kForecasterTag, "forecaster tag");
  ForecasterConfig config;
  config.hidden = nn::read_u64(in, "forecaster hidden");
  config.head_hidden = nn::read_u64(in, "forecaster head hidden");
  config.epochs = nn::read_u64(in, "forecaster epochs");
  config.batch_size = nn::read_u64(in, "forecaster batch size");
  config.learning_rate = nn::read_f64(in, "forecaster learning rate");
  config.grad_clip = nn::read_f64(in, "forecaster grad clip");
  config.target_channel = nn::read_u64(in, "forecaster target channel");
  config.seed = nn::read_u64(in, "forecaster seed");
  data::MinMaxScaler scaler;
  scaler.load(in);
  if (!scaler.fitted() || config.hidden == 0 || config.head_hidden == 0 ||
      config.target_channel >= scaler.num_features()) {
    throw common::SerializationError("forecaster artifact carries an invalid config");
  }
  BiLstmForecaster model(config, std::move(scaler));
  nn::read_parameters(in, model.parameters());
  return model;
}

}  // namespace goodones::predict
