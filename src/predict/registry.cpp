#include "predict/registry.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"
#include "data/window.hpp"

namespace goodones::predict {

const BiLstmForecaster& ModelRegistry::personalized(std::size_t entity_index) const {
  GO_EXPECTS(entity_index < personalized_.size());
  return *personalized_[entity_index];
}

const BiLstmForecaster& ModelRegistry::aggregate() const {
  GO_EXPECTS(aggregate_ != nullptr);
  return *aggregate_;
}

ModelRegistry ModelRegistry::train(const std::vector<const data::TelemetrySeries*>& train_series,
                                   const std::vector<std::string>& names,
                                   const RegistryConfig& config, common::ThreadPool& pool) {
  GO_EXPECTS(!train_series.empty());
  GO_EXPECTS(names.size() == train_series.size());
  GO_EXPECTS(config.target_max > config.target_min);
  for (const auto* series : train_series) GO_EXPECTS(series != nullptr);
  ModelRegistry registry;
  registry.personalized_.resize(train_series.size());

  // Per-entity training windows (subsampled), shared by both model kinds.
  data::WindowConfig train_window = config.window;
  train_window.step = config.train_window_step;

  std::vector<std::vector<data::Window>> entity_windows(train_series.size());
  common::parallel_for(pool, train_series.size(), [&](std::size_t i) {
    entity_windows[i] = data::make_windows(*train_series[i], train_window);
  });

  // Personalized models in parallel; each derives its own seed so results
  // do not depend on scheduling.
  common::parallel_for(pool, train_series.size(), [&](std::size_t i) {
    ForecasterConfig fc = config.forecaster;
    fc.seed = config.forecaster.seed * 1000 + i;
    fc.target_channel = config.target_channel;
    auto model = std::make_unique<BiLstmForecaster>(
        fc, fit_forecaster_scaler(train_series[i]->values, config.target_channel,
                                  config.target_min, config.target_max));
    const double loss = model->train(entity_windows[i]);
    common::log_info("personalized model ", names[i], " trained, final MSE(norm)=", loss);
    registry.personalized_[i] = std::move(model);
  });

  // Aggregate model: pool windows across all entities with a larger stride.
  data::WindowConfig agg_window = config.window;
  agg_window.step = config.aggregate_window_step;
  std::vector<data::Window> pooled;
  data::MinMaxScaler agg_scaler;
  for (std::size_t i = 0; i < train_series.size(); ++i) {
    auto windows = data::make_windows(*train_series[i], agg_window);
    pooled.insert(pooled.end(), std::make_move_iterator(windows.begin()),
                  std::make_move_iterator(windows.end()));
    agg_scaler.partial_fit(train_series[i]->values);
  }
  agg_scaler.set_column_range(config.target_channel, config.target_min, config.target_max);

  ForecasterConfig agg_config = config.forecaster;
  agg_config.seed = config.forecaster.seed * 1000 + 999;
  agg_config.target_channel = config.target_channel;
  registry.aggregate_ = std::make_unique<BiLstmForecaster>(agg_config, agg_scaler);
  const double agg_loss = registry.aggregate_->train(pooled);
  common::log_info("aggregate model trained on ", pooled.size(),
                   " windows, final MSE(norm)=", agg_loss);
  return registry;
}

}  // namespace goodones::predict
