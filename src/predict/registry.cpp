#include "predict/registry.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"
#include "data/timeseries.hpp"

namespace goodones::predict {

const BiLstmForecaster& ModelRegistry::personalized(std::size_t cohort_index) const {
  GO_EXPECTS(cohort_index < personalized_.size());
  return *personalized_[cohort_index];
}

const BiLstmForecaster& ModelRegistry::aggregate() const {
  GO_EXPECTS(aggregate_ != nullptr);
  return *aggregate_;
}

ModelRegistry ModelRegistry::train(const std::vector<sim::PatientTrace>& cohort,
                                   const RegistryConfig& config, common::ThreadPool& pool) {
  GO_EXPECTS(!cohort.empty());
  ModelRegistry registry;
  registry.personalized_.resize(cohort.size());

  // Per-patient training windows (subsampled), shared by both model kinds.
  data::WindowConfig train_window = config.window;
  train_window.step = config.train_window_step;

  std::vector<std::vector<data::Window>> patient_windows(cohort.size());
  std::vector<data::TelemetrySeries> train_series;
  train_series.reserve(cohort.size());
  for (const auto& trace : cohort) train_series.push_back(data::to_series(trace.train));

  common::parallel_for(pool, cohort.size(), [&](std::size_t i) {
    patient_windows[i] = data::make_windows(train_series[i], train_window);
  });

  // Personalized models in parallel; each derives its own seed so results
  // do not depend on scheduling.
  common::parallel_for(pool, cohort.size(), [&](std::size_t i) {
    ForecasterConfig fc = config.forecaster;
    fc.seed = config.forecaster.seed * 1000 + i;
    auto model = std::make_unique<BiLstmForecaster>(
        fc, fit_forecaster_scaler(train_series[i].values));
    const double loss = model->train(patient_windows[i]);
    common::log_info("personalized model ", sim::to_string(cohort[i].params.id),
                     " trained, final MSE(norm)=", loss);
    registry.personalized_[i] = std::move(model);
  });

  // Aggregate model: pool windows across all patients with a larger stride.
  data::WindowConfig agg_window = config.window;
  agg_window.step = config.aggregate_window_step;
  std::vector<data::Window> pooled;
  data::MinMaxScaler agg_scaler;
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    auto windows = data::make_windows(train_series[i], agg_window);
    pooled.insert(pooled.end(), std::make_move_iterator(windows.begin()),
                  std::make_move_iterator(windows.end()));
    agg_scaler.partial_fit(train_series[i].values);
  }
  agg_scaler.set_column_range(data::kCgm, sim::kMinGlucose, sim::kMaxGlucose);

  ForecasterConfig agg_config = config.forecaster;
  agg_config.seed = config.forecaster.seed * 1000 + 999;
  registry.aggregate_ = std::make_unique<BiLstmForecaster>(agg_config, agg_scaler);
  const double agg_loss = registry.aggregate_->train(pooled);
  common::log_info("aggregate model trained on ", pooled.size(),
                   " windows, final MSE(norm)=", agg_loss);
  return registry;
}

}  // namespace goodones::predict
