// Training and lookup of a domain's model fleet: one personalized
// forecaster per monitored entity plus one aggregate model trained on data
// pooled across all entities (the two model types of Rubin-Falcone et al.
// that the paper attacks).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "data/timeseries.hpp"
#include "predict/bilstm_forecaster.hpp"

namespace goodones::predict {

struct RegistryConfig {
  ForecasterConfig forecaster;
  data::WindowConfig window;
  std::size_t train_window_step = 2;      ///< subsampling stride for training
  std::size_t aggregate_window_step = 12; ///< heavier stride for the pooled model
  /// Target-channel scaling, stamped by the domain adapter: all models pin
  /// this channel to [target_min, target_max] so risk is comparable across
  /// entities regardless of observed extremes.
  std::size_t target_channel = 0;
  double target_min = 0.0;
  double target_max = 1.0;
};

/// The trained fleet. Personalized models are indexed in entity order.
class ModelRegistry {
 public:
  ModelRegistry() = default;

  const BiLstmForecaster& personalized(std::size_t entity_index) const;
  const BiLstmForecaster& aggregate() const;
  std::size_t num_personalized() const noexcept { return personalized_.size(); }

  /// Trains every model on the entities' training series, read in place
  /// (`names` label the log lines; pass one per series). Personalized
  /// models run in parallel on `pool`. Determinism holds regardless of
  /// thread scheduling (per-model seeds).
  static ModelRegistry train(const std::vector<const data::TelemetrySeries*>& train_series,
                             const std::vector<std::string>& names,
                             const RegistryConfig& config, common::ThreadPool& pool);

 private:
  std::vector<std::unique_ptr<BiLstmForecaster>> personalized_;
  std::unique_ptr<BiLstmForecaster> aggregate_;
};

}  // namespace goodones::predict
