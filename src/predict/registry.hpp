// Training and lookup of the case study's model fleet: one personalized
// forecaster per patient plus one aggregate model trained on data pooled
// across all patients (the two model types of Rubin-Falcone et al. that
// the paper attacks).
#pragma once

#include <memory>
#include <vector>

#include "common/thread_pool.hpp"
#include "predict/bilstm_forecaster.hpp"
#include "sim/cohort.hpp"

namespace goodones::predict {

struct RegistryConfig {
  ForecasterConfig forecaster;
  data::WindowConfig window;
  std::size_t train_window_step = 2;      ///< subsampling stride for training
  std::size_t aggregate_window_step = 12; ///< heavier stride for the pooled model
};

/// The trained fleet. Personalized models are indexed in cohort order
/// (A_0..A_5 then B_0..B_5).
class ModelRegistry {
 public:
  ModelRegistry() = default;

  const BiLstmForecaster& personalized(std::size_t cohort_index) const;
  const BiLstmForecaster& aggregate() const;
  std::size_t num_personalized() const noexcept { return personalized_.size(); }

  /// Trains every model; personalized models run in parallel on `pool`.
  /// Determinism holds regardless of thread scheduling (per-model seeds).
  static ModelRegistry train(const std::vector<sim::PatientTrace>& cohort,
                             const RegistryConfig& config, common::ThreadPool& pool);

 private:
  std::vector<std::unique_ptr<BiLstmForecaster>> personalized_;
  std::unique_ptr<BiLstmForecaster> aggregate_;
};

}  // namespace goodones::predict
