#include "predict/batch_planner.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace goodones::predict {

namespace {

bool rows_equal(const nn::Matrix& a, const nn::Matrix& b, std::size_t row) noexcept {
  const auto ra = a.row(row);
  const auto rb = b.row(row);
  return std::equal(ra.begin(), ra.end(), rb.begin());
}

/// Uniform element access for the value-span and pointer-span overloads: the
/// planning logic below is written once against `win(i)` so both entry
/// points produce identical plans by construction.
const nn::Matrix& deref(std::span<const nn::Matrix> windows, std::size_t i) noexcept {
  return windows[i];
}
const nn::Matrix& deref(std::span<const nn::Matrix* const> windows, std::size_t i) noexcept {
  return *windows[i];
}

/// Shared-row plan over an indexed subset of same-shape windows.
template <typename Windows>
BatchPlan plan_indexed(Windows windows, std::span<const std::size_t> indices) {
  GO_EXPECTS(!indices.empty());
  const nn::Matrix& base = deref(windows, indices.front());
  for (const std::size_t i : indices) {
    GO_EXPECTS(deref(windows, i).rows() == base.rows() &&
               deref(windows, i).cols() == base.cols());
  }
  const std::size_t rows = base.rows();

  BatchPlan plan;
  plan.shared_prefix = rows;
  for (std::size_t m = 1; m < indices.size(); ++m) {
    const nn::Matrix& w = deref(windows, indices[m]);
    std::size_t p = 0;
    while (p < plan.shared_prefix && rows_equal(base, w, p)) ++p;
    plan.shared_prefix = p;
    if (plan.shared_prefix == 0) break;
  }

  // Suffix counted over the rows the prefix does not already cover, so the
  // two never overlap (a batch of identical windows is all prefix).
  plan.shared_suffix = rows - plan.shared_prefix;
  for (std::size_t m = 1; m < indices.size() && plan.shared_suffix > 0; ++m) {
    const nn::Matrix& w = deref(windows, indices[m]);
    std::size_t s = 0;
    while (s < plan.shared_suffix && rows_equal(base, w, rows - 1 - s)) ++s;
    plan.shared_suffix = s;
  }
  return plan;
}

template <typename Windows>
BatchPlan plan_shared_rows_impl(Windows windows) {
  GO_EXPECTS(!windows.empty());
  std::vector<std::size_t> all(windows.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return plan_indexed(windows, all);
}

template <typename Windows>
std::vector<ProbeCluster> cluster_probes_impl(Windows windows,
                                              std::span<const std::size_t> indices) {
  GO_EXPECTS(!indices.empty());
  const nn::Matrix& head = deref(windows, indices.front());
  for (const std::size_t i : indices) {
    GO_EXPECTS(deref(windows, i).rows() == head.rows() &&
               deref(windows, i).cols() == head.cols());
  }

  // Greedy pass: track each cluster's running common prefix so a joining
  // window only shrinks it, never re-scans earlier members.
  struct Building {
    std::vector<std::size_t> members;
    std::size_t common_prefix;  // shared leading rows among members so far
  };
  std::vector<Building> building;
  for (const std::size_t i : indices) {
    const nn::Matrix& w = deref(windows, i);
    bool placed = false;
    for (Building& b : building) {
      const nn::Matrix& rep = deref(windows, b.members.front());
      std::size_t p = 0;
      while (p < b.common_prefix && rows_equal(rep, w, p)) ++p;
      if (p > 0) {
        b.members.push_back(i);
        b.common_prefix = p;
        placed = true;
        break;
      }
    }
    if (!placed) building.push_back(Building{{i}, w.rows()});
  }

  // Singletons fold into one residual cluster; its exact plan (usually
  // prefix 0) degrades to the packed whole-sequence path, which is what a
  // planless batch would have run anyway.
  std::vector<ProbeCluster> clusters;
  std::vector<std::size_t> residual;
  for (Building& b : building) {
    if (b.members.size() > 1) {
      clusters.push_back(ProbeCluster{std::move(b.members), {}});
    } else {
      residual.push_back(b.members.front());
    }
  }
  if (!residual.empty()) clusters.push_back(ProbeCluster{std::move(residual), {}});
  for (ProbeCluster& cluster : clusters) {
    cluster.plan = plan_indexed(windows, cluster.indices);
  }
  return clusters;
}

template <typename Windows>
std::vector<ProbeGroup> group_probes_impl(Windows windows) {
  std::vector<ProbeGroup> groups;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const auto same_shape = [&](const ProbeGroup& g) {
      const nn::Matrix& head = deref(windows, g.indices.front());
      return head.rows() == deref(windows, i).rows() &&
             head.cols() == deref(windows, i).cols();
    };
    const auto it = std::find_if(groups.begin(), groups.end(), same_shape);
    if (it == groups.end()) {
      groups.push_back(ProbeGroup{{i}, {}});
    } else {
      it->indices.push_back(i);
    }
  }
  for (ProbeGroup& group : groups) {
    group.plan = plan_indexed(windows, group.indices);
  }
  return groups;
}

}  // namespace

BatchPlan plan_shared_rows(std::span<const nn::Matrix> windows) {
  return plan_shared_rows_impl(windows);
}

BatchPlan plan_shared_rows(std::span<const nn::Matrix* const> windows) {
  return plan_shared_rows_impl(windows);
}

std::vector<ProbeCluster> cluster_probes(std::span<const nn::Matrix> windows,
                                         std::span<const std::size_t> indices) {
  return cluster_probes_impl(windows, indices);
}

std::vector<ProbeCluster> cluster_probes(std::span<const nn::Matrix* const> windows,
                                         std::span<const std::size_t> indices) {
  return cluster_probes_impl(windows, indices);
}

std::vector<ProbeGroup> group_probes(std::span<const nn::Matrix> windows) {
  return group_probes_impl(windows);
}

std::vector<ProbeGroup> group_probes(std::span<const nn::Matrix* const> windows) {
  return group_probes_impl(windows);
}

}  // namespace goodones::predict
