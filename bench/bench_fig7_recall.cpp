// Reproduces paper Fig. 7: recall of kNN, OneClassSVM and MAD-GAN under the
// four training strategies. Paper headline: less-vulnerable training raises
// recall by 27.5% (kNN) and 16.8% (OneClassSVM) over indiscriminate
// training; MAD-GAN keeps recall 1.0 at a 75% smaller training set.
#include "bench_detector_grid.hpp"

#include "detect/madgan.hpp"

namespace {

using namespace goodones;

void BM_MadGanInversion(benchmark::State& state) {
  common::Rng rng(5);
  detect::MadGanConfig config;
  config.epochs = 2;
  config.hidden = 16;
  config.max_train_windows = 64;
  config.calibration_windows = 16;
  config.inversion_steps = static_cast<std::size_t>(state.range(0));
  detect::MadGan detector(config);
  std::vector<nn::Matrix> benign;
  for (int i = 0; i < 64; ++i) {
    nn::Matrix w(12, 4);
    for (std::size_t t = 0; t < 12; ++t) w(t, 0) = 0.3 + rng.normal(0.0, 0.02);
    benign.push_back(std::move(w));
  }
  detector.fit(benign, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.reconstruction_error(benign.front()));
  }
}
BENCHMARK(BM_MadGanInversion)->Arg(5)->Arg(25);

}  // namespace

int main(int argc, char** argv) {
  auto config = goodones::bench::announce_config();
  goodones::core::RiskProfilingFramework framework(goodones::bench::bgms_domain(), config);
  goodones::bench::render_metric_grid(
      framework, {"Fig. 7", "Recall", "fig7_recall.csv",
                  [](const goodones::core::ConfusionMatrix& cm) { return cm.recall(); }});
  return goodones::bench::run_microbenchmarks(argc, argv);
}
