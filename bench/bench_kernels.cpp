// Kernel microbenchmarks across the substrate: LSTM forward/backward,
// BiLSTM forecaster inference, glucose simulation, window extraction,
// scaling and matrix multiplication. One place to watch for performance
// regressions in the primitives every experiment depends on.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "data/scaler.hpp"
#include "data/timeseries.hpp"
#include "data/window.hpp"
#include "nn/lstm.hpp"
#include "predict/bilstm_forecaster.hpp"
#include "domains/bgms/cohort.hpp"
#include "domains/bgms/patient.hpp"

namespace {

using namespace goodones;

nn::Matrix random_matrix(std::size_t rows, std::size_t cols, common::Rng& rng) {
  nn::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (double& x : m.row(r)) x = rng.uniform(-1.0, 1.0);
  }
  return m;
}

void BM_MatMul(benchmark::State& state) {
  common::Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  const nn::Matrix a = random_matrix(n, n, rng);
  const nn::Matrix b = random_matrix(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(128);

void BM_LstmForward(benchmark::State& state) {
  common::Rng rng(5);
  const nn::Lstm lstm(4, static_cast<std::size_t>(state.range(0)), rng);
  const nn::Matrix x = random_matrix(12, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.forward(x));
  }
}
BENCHMARK(BM_LstmForward)->Arg(24)->Arg(64);

void BM_LstmForwardBackward(benchmark::State& state) {
  common::Rng rng(7);
  nn::Lstm lstm(4, static_cast<std::size_t>(state.range(0)), rng);
  const nn::Matrix x = random_matrix(12, 4, rng);
  const nn::Matrix grad = random_matrix(12, static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    nn::Lstm::Cache cache;
    lstm.forward_cached(x, cache);
    benchmark::DoNotOptimize(lstm.backward(grad, cache));
    nn::zero_all_grads(lstm.parameters());
  }
}
BENCHMARK(BM_LstmForwardBackward)->Arg(24)->Arg(64);

void BM_ForecasterPredict(benchmark::State& state) {
  bgms::CohortConfig cohort_config;
  cohort_config.train_steps = 600;
  cohort_config.test_steps = 60;
  const auto trace = bgms::generate_patient({bgms::Subset::kA, 0}, cohort_config);
  const auto series = bgms::to_series(trace.train);

  predict::ForecasterConfig config;
  config.hidden = static_cast<std::size_t>(state.range(0));
  config.epochs = 1;
  predict::BiLstmForecaster model(config, predict::fit_forecaster_scaler(series.values, bgms::kCgm,
                                                           bgms::kMinGlucose, bgms::kMaxGlucose));
  const auto windows = data::make_windows(series, {});
  model.train({windows.begin(), windows.begin() + 50});

  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(windows.front().features));
  }
}
BENCHMARK(BM_ForecasterPredict)->Arg(24)->Arg(32);

void BM_ForecasterInputGradient(benchmark::State& state) {
  bgms::CohortConfig cohort_config;
  cohort_config.train_steps = 600;
  cohort_config.test_steps = 60;
  const auto trace = bgms::generate_patient({bgms::Subset::kB, 1}, cohort_config);
  const auto series = bgms::to_series(trace.train);
  predict::ForecasterConfig config;
  config.hidden = 24;
  config.epochs = 1;
  predict::BiLstmForecaster model(config, predict::fit_forecaster_scaler(series.values, bgms::kCgm,
                                                           bgms::kMinGlucose, bgms::kMaxGlucose));
  const auto windows = data::make_windows(series, {});
  model.train({windows.begin(), windows.begin() + 50});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.input_gradient(windows.front().features));
  }
}
BENCHMARK(BM_ForecasterInputGradient);

void BM_GlucoseSimulation(benchmark::State& state) {
  const auto params = bgms::patient_parameters({bgms::Subset::kA, 3});
  for (auto _ : state) {
    bgms::GlucoseSimulator simulator(params, 42);
    benchmark::DoNotOptimize(simulator.run(static_cast<std::size_t>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GlucoseSimulation)->Arg(1000)->Arg(10000);

void BM_WindowExtraction(benchmark::State& state) {
  bgms::CohortConfig config;
  config.train_steps = static_cast<std::size_t>(state.range(0));
  config.test_steps = 20;
  const auto trace = bgms::generate_patient({bgms::Subset::kB, 0}, config);
  const auto series = bgms::to_series(trace.train);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::make_windows(series, {}));
  }
}
BENCHMARK(BM_WindowExtraction)->Arg(2000)->Arg(10000);

void BM_ScalerTransform(benchmark::State& state) {
  common::Rng rng(13);
  const nn::Matrix data = random_matrix(static_cast<std::size_t>(state.range(0)), 4, rng);
  data::MinMaxScaler scaler;
  scaler.fit(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scaler.transform(data));
  }
}
BENCHMARK(BM_ScalerTransform)->Arg(1000);

}  // namespace

BENCHMARK_MAIN();
