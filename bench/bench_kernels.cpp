// Kernel microbenchmarks across the substrate: the nn::simd dispatch lanes
// (scalar vs the best vector lane, per kernel), pack_step_major, LSTM
// forward/backward, BiLSTM forecaster inference, glucose simulation, window
// extraction, scaling and matrix multiplication. One place to watch for
// performance regressions in the primitives every experiment depends on.
// Lane-comparison records land in BENCH_kernels.json.
#include "bench_common.hpp"

#include <chrono>
#include <span>

#include "common/rng.hpp"
#include "data/scaler.hpp"
#include "data/timeseries.hpp"
#include "data/window.hpp"
#include "nn/lstm.hpp"
#include "nn/matrix.hpp"
#include "nn/simd.hpp"
#include "predict/bilstm_forecaster.hpp"
#include "domains/bgms/cohort.hpp"
#include "domains/bgms/patient.hpp"

namespace {

using namespace goodones;
using Clock = std::chrono::steady_clock;

nn::Matrix random_matrix(std::size_t rows, std::size_t cols, common::Rng& rng) {
  nn::Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (double& x : m.row(r)) x = rng.uniform(-1.0, 1.0);
  }
  return m;
}

void BM_MatMul(benchmark::State& state) {
  common::Rng rng(3);
  const auto n = static_cast<std::size_t>(state.range(0));
  const nn::Matrix a = random_matrix(n, n, rng);
  const nn::Matrix b = random_matrix(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(128);

void BM_LstmForward(benchmark::State& state) {
  common::Rng rng(5);
  const nn::Lstm lstm(4, static_cast<std::size_t>(state.range(0)), rng);
  const nn::Matrix x = random_matrix(12, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lstm.forward(x));
  }
}
BENCHMARK(BM_LstmForward)->Arg(24)->Arg(64);

void BM_LstmForwardBackward(benchmark::State& state) {
  common::Rng rng(7);
  nn::Lstm lstm(4, static_cast<std::size_t>(state.range(0)), rng);
  const nn::Matrix x = random_matrix(12, 4, rng);
  const nn::Matrix grad = random_matrix(12, static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    nn::Lstm::Cache cache;
    lstm.forward_cached(x, cache);
    benchmark::DoNotOptimize(lstm.backward(grad, cache));
    nn::zero_all_grads(lstm.parameters());
  }
}
BENCHMARK(BM_LstmForwardBackward)->Arg(24)->Arg(64);

void BM_ForecasterPredict(benchmark::State& state) {
  bgms::CohortConfig cohort_config;
  cohort_config.train_steps = 600;
  cohort_config.test_steps = 60;
  const auto trace = bgms::generate_patient({bgms::Subset::kA, 0}, cohort_config);
  const auto series = bgms::to_series(trace.train);

  predict::ForecasterConfig config;
  config.hidden = static_cast<std::size_t>(state.range(0));
  config.epochs = 1;
  predict::BiLstmForecaster model(config, predict::fit_forecaster_scaler(series.values, bgms::kCgm,
                                                           bgms::kMinGlucose, bgms::kMaxGlucose));
  const auto windows = data::make_windows(series, {});
  model.train({windows.begin(), windows.begin() + 50});

  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(windows.front().features));
  }
}
BENCHMARK(BM_ForecasterPredict)->Arg(24)->Arg(32);

void BM_ForecasterInputGradient(benchmark::State& state) {
  bgms::CohortConfig cohort_config;
  cohort_config.train_steps = 600;
  cohort_config.test_steps = 60;
  const auto trace = bgms::generate_patient({bgms::Subset::kB, 1}, cohort_config);
  const auto series = bgms::to_series(trace.train);
  predict::ForecasterConfig config;
  config.hidden = 24;
  config.epochs = 1;
  predict::BiLstmForecaster model(config, predict::fit_forecaster_scaler(series.values, bgms::kCgm,
                                                           bgms::kMinGlucose, bgms::kMaxGlucose));
  const auto windows = data::make_windows(series, {});
  model.train({windows.begin(), windows.begin() + 50});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.input_gradient(windows.front().features));
  }
}
BENCHMARK(BM_ForecasterInputGradient);

void BM_GlucoseSimulation(benchmark::State& state) {
  const auto params = bgms::patient_parameters({bgms::Subset::kA, 3});
  for (auto _ : state) {
    bgms::GlucoseSimulator simulator(params, 42);
    benchmark::DoNotOptimize(simulator.run(static_cast<std::size_t>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GlucoseSimulation)->Arg(1000)->Arg(10000);

void BM_WindowExtraction(benchmark::State& state) {
  bgms::CohortConfig config;
  config.train_steps = static_cast<std::size_t>(state.range(0));
  config.test_steps = 20;
  const auto trace = bgms::generate_patient({bgms::Subset::kB, 0}, config);
  const auto series = bgms::to_series(trace.train);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::make_windows(series, {}));
  }
}
BENCHMARK(BM_WindowExtraction)->Arg(2000)->Arg(10000);

void BM_ScalerTransform(benchmark::State& state) {
  common::Rng rng(13);
  const nn::Matrix data = random_matrix(static_cast<std::size_t>(state.range(0)), 4, rng);
  data::MinMaxScaler scaler;
  scaler.fit(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scaler.transform(data));
  }
}
BENCHMARK(BM_ScalerTransform)->Arg(1000);

void BM_PackStepMajor(benchmark::State& state) {
  common::Rng rng(17);
  const auto blocks_n = static_cast<std::size_t>(state.range(0));
  std::vector<nn::Matrix> blocks;
  for (std::size_t i = 0; i < blocks_n; ++i) blocks.push_back(random_matrix(24, 4, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        nn::pack_step_major(std::span<const nn::Matrix>(blocks), 0, 24));
  }
  state.SetItemsProcessed(state.iterations() * blocks_n * 24);
}
// Arg(1) hits the contiguous single-memcpy fast path; Arg(32) the
// step-major interleave.
BENCHMARK(BM_PackStepMajor)->Arg(1)->Arg(32);

// --- dispatch-lane records (BENCH_kernels.json) ------------------------------
//
// Hand-timed scalar-vs-vector comparisons of the hot kernels on the shapes
// the forecaster actually runs: the input projection GEMM (rows x 4 times
// 4 x 4h), the recurrent GEMM (batch x h times h x 4h), and the per-row
// LSTM gate math. One record per (kernel, lane) so the JSON trail shows the
// lane speedup directly.

template <typename Fn>
bench::BenchRecord time_kernel(const std::string& name, std::size_t reps, Fn&& fn) {
  const auto start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) fn();
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  bench::BenchRecord record;
  record.name = name;
  record.iters = reps;
  record.ns_per_op = seconds * 1e9 / static_cast<double>(reps);
  return record;
}

void record_kernel_lanes(std::vector<bench::BenchRecord>& records) {
  namespace simd = nn::simd;
  common::Rng rng(23);
  constexpr std::size_t h = 24;      // forecaster hidden size
  constexpr std::size_t rows = 128;  // packed batch*time rows
  constexpr std::size_t batch = 8;
  const nn::Matrix x = random_matrix(rows, 4, rng);
  const nn::Matrix wx = random_matrix(4, 4 * h, rng);
  const nn::Matrix hs = random_matrix(batch, h, rng);
  const nn::Matrix wh = random_matrix(h, 4 * h, rng);
  const nn::Matrix bias = random_matrix(1, 4 * h, rng);
  const nn::Matrix pre = random_matrix(batch, 4 * h, rng);

  std::vector<simd::Isa> lanes{simd::Isa::kScalar};
  if (simd::active_isa() != simd::Isa::kScalar) lanes.push_back(simd::active_isa());

  for (const simd::Isa isa : lanes) {
    const simd::KernelTable& kt = *simd::table_for(isa);
    const std::string lane = simd::isa_name(isa);
    const std::size_t reps = bench::bench_reps(20000);

    nn::Matrix proj(rows, 4 * h);
    records.push_back(time_kernel("matmul_bias_128x4x96_" + lane, reps, [&] {
      kt.matmul_bias(x.data(), wx.data(), bias.data(), proj.data(), rows, 4, 4 * h);
      benchmark::DoNotOptimize(proj.data());
    }));

    nn::Matrix acc = pre;
    records.push_back(time_kernel("matmul_acc_8x24x96_" + lane, reps, [&] {
      kt.matmul_acc(hs.data(), wh.data(), acc.data(), batch, h, 4 * h);
      benchmark::DoNotOptimize(acc.data());
    }));

    std::vector<double> gate_pre(pre.row(0).begin(), pre.row(0).end());
    std::vector<double> cell(h, 0.1);
    std::vector<double> hidden(h, 0.1);
    records.push_back(time_kernel("lstm_gates_h24_" + lane, reps, [&] {
      kt.lstm_gates(gate_pre.data(), h, cell.data(), hidden.data());
      benchmark::DoNotOptimize(hidden.data());
    }));

    // The same fused gate row-step through the fast-math lane: this pair of
    // records is the per-row-step cost the exp/tanh budget in
    // docs/BENCHMARKS.md quotes.
    records.push_back(time_kernel("lstm_gates_fast_h24_" + lane, reps, [&] {
      kt.lstm_gates_fast(gate_pre.data(), h, cell.data(), hidden.data());
      benchmark::DoNotOptimize(hidden.data());
    }));

    // Transcendental microbench over one gate row-step's worth of inputs
    // (4h = 96 pre-activations): the vectorized polynomial kernels per lane.
    std::vector<double> trans_out(4 * h);
    records.push_back(time_kernel("fast_exp_96_" + lane, reps, [&] {
      kt.fast_exp_n(gate_pre.data(), trans_out.data(), 4 * h);
      benchmark::DoNotOptimize(trans_out.data());
    }));
    records.push_back(time_kernel("fast_tanh_96_" + lane, reps, [&] {
      kt.fast_tanh_n(gate_pre.data(), trans_out.data(), 4 * h);
      benchmark::DoNotOptimize(trans_out.data());
    }));
  }

  // The glibc baseline the fast lane is measured against: scalar libm
  // exp/tanh over the same 96 inputs (what every exact lane pays per gate
  // row-step, since exact kernels always call scalar libm transcendentals).
  {
    const nn::Matrix pre_row = random_matrix(1, 4 * h, rng);
    std::vector<double> out(4 * h);
    const std::size_t reps = bench::bench_reps(20000);
    records.push_back(time_kernel("exp_glibc_96", reps, [&] {
      for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::exp(pre_row.data()[i]);
      benchmark::DoNotOptimize(out.data());
    }));
    records.push_back(time_kernel("tanh_glibc_96", reps, [&] {
      for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(pre_row.data()[i]);
      benchmark::DoNotOptimize(out.data());
    }));
  }

  // pack_step_major: the contiguous single-block memcpy fast path vs the
  // 32-way step-major interleave the batched forward uses.
  common::Rng pack_rng(29);
  std::vector<nn::Matrix> one{random_matrix(24, 4, pack_rng)};
  std::vector<nn::Matrix> many;
  for (std::size_t i = 0; i < 32; ++i) many.push_back(random_matrix(24, 4, pack_rng));
  const std::size_t pack_reps = bench::bench_reps(20000);
  records.push_back(time_kernel("pack_step_major_1x24x4_contiguous", pack_reps, [&] {
    benchmark::DoNotOptimize(nn::pack_step_major(std::span<const nn::Matrix>(one), 0, 24));
  }));
  records.push_back(time_kernel("pack_step_major_32x24x4", pack_reps, [&] {
    benchmark::DoNotOptimize(nn::pack_step_major(std::span<const nn::Matrix>(many), 0, 24));
  }));
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "goodones kernel bench — active SIMD lane: "
            << nn::simd::isa_name(nn::simd::active_isa()) << "\n";
  std::vector<bench::BenchRecord> records;
  record_kernel_lanes(records);
  goodones::bench::save_bench_json(records, "kernels");
  return goodones::bench::run_microbenchmarks(argc, argv);
}
