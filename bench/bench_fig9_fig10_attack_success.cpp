// Reproduces paper Appendix A (Fig. 9 and Fig. 10): percentage of
// originally-normal (Fig. 9) and originally-hypoglycemic (Fig. 10) glucose
// instances misdiagnosed as hyperglycemic under the URET-style attack, per
// personalized model, for the aggregate model, and averaged — fasting and
// postprandial scenarios. Microbenchmarks time the attack search kernels.
#include "bench_common.hpp"

#include "attack/evasion.hpp"
#include "data/timeseries.hpp"
#include "domains/bgms/cohort.hpp"

namespace {

using namespace goodones;

void reproduce_appendix_a(core::RiskProfilingFramework& framework) {
  auto& models = framework.models();
  const auto& entities = framework.entities();

  common::AsciiTable fig9("Fig. 9 — Normal -> Hyper attack success (%), test split",
                          {"Model", "Fasting", "Postprandial"});
  common::AsciiTable fig10("Fig. 10 — Hypo -> Hyper attack success (%), test split",
                           {"Model", "Fasting", "Postprandial"});
  common::CsvTable csv({"model", "origin", "fasting_pct", "postprandial_pct",
                        "fasting_attempts", "postprandial_attempts"});

  attack::CampaignConfig campaign = framework.config().evaluation_campaign;
  double avg9_fast = 0.0;
  double avg9_post = 0.0;
  double avg10_fast = 0.0;
  double avg10_post = 0.0;
  std::size_t model_count = 0;

  const auto add_model = [&](const std::string& name,
                             const predict::Forecaster& model,
                             const std::vector<data::Window>& windows) {
    const auto outcomes = attack::run_campaign(model, windows, campaign, framework.pool());
    const auto rates = attack::summarize(outcomes);
    fig9.add_row({name, common::fixed(100.0 * rates.normal_baseline_rate(), 1),
                  common::fixed(100.0 * rates.normal_active_rate(), 1)});
    fig10.add_row({name, common::fixed(100.0 * rates.low_baseline_rate(), 1),
                   common::fixed(100.0 * rates.low_active_rate(), 1)});
    csv.add_row({name, "normal", common::format_double(100.0 * rates.normal_baseline_rate()),
                 common::format_double(100.0 * rates.normal_active_rate()),
                 std::to_string(rates.normal_baseline_attempts),
                 std::to_string(rates.normal_active_attempts)});
    csv.add_row({name, "hypo", common::format_double(100.0 * rates.low_baseline_rate()),
                 common::format_double(100.0 * rates.low_active_rate()),
                 std::to_string(rates.low_baseline_attempts),
                 std::to_string(rates.low_active_attempts)});
    avg9_fast += rates.normal_baseline_rate();
    avg9_post += rates.normal_active_rate();
    avg10_fast += rates.low_baseline_rate();
    avg10_post += rates.low_active_rate();
    ++model_count;
  };

  // Personalized models on their own patient's held-out test windows, then
  // the aggregate model pooled over every patient's test windows.
  data::WindowConfig window = framework.config().window;
  window.step = 1;
  std::vector<data::Window> pooled;
  for (std::size_t i = 0; i < entities.size(); ++i) {
    const auto& series = entities[i].test;
    auto windows = data::make_windows(series, window);
    add_model("Patient " + entities[i].name, models.personalized(i),
              windows);
    // Pool a slice into the aggregate-model evaluation set.
    for (std::size_t k = 0; k < windows.size(); k += entities.size()) {
      pooled.push_back(windows[k]);
    }
  }
  add_model("All patients (aggregate)", models.aggregate(), pooled);

  const auto n = static_cast<double>(model_count);
  fig9.add_row({"Average", common::fixed(100.0 * avg9_fast / n, 1),
                common::fixed(100.0 * avg9_post / n, 1)});
  fig10.add_row({"Average", common::fixed(100.0 * avg10_fast / n, 1),
                 common::fixed(100.0 * avg10_post / n, 1)});

  fig9.print();
  fig10.print();
  bench::save_artifact(csv, "fig9_fig10_attack_success.csv");
  std::cout << "Paper shape check: success rates should differ strongly across patients\n"
               "(resilient patients like A_5/B_1/B_2 low, dysregulated patients high).\n";
}

// --- microbenchmarks -------------------------------------------------------

/// Analytic model so the benchmark times the search, not LSTM inference.
class FixedModel final : public predict::Forecaster {
 public:
  double predict(const nn::Matrix& x) const override {
    double sum = 0.0;
    for (std::size_t t = 0; t < x.rows(); ++t) sum += x(t, bgms::kCgm);
    return 0.6 * sum / static_cast<double>(x.rows());
  }
  nn::Matrix input_gradient(const nn::Matrix& x) const override {
    nn::Matrix g(x.rows(), x.cols());
    for (std::size_t t = 0; t < x.rows(); ++t) {
      g(t, bgms::kCgm) = 0.6 / static_cast<double>(x.rows());
    }
    return g;
  }
};

data::Window bench_window() {
  data::Window w;
  w.features = nn::Matrix(12, bgms::kNumChannels);
  for (std::size_t t = 0; t < 12; ++t) w.features(t, bgms::kCgm) = 100.0;
  w.regime = data::Regime::kBaseline;
  w.target_value = 100.0;
  return w;
}

void BM_AttackSearch(benchmark::State& state) {
  const FixedModel model;
  attack::AttackConfig config;
  config.search = static_cast<attack::SearchKind>(state.range(0));
  config.beam_width = 4;
  const attack::EvasionAttack attack(config);
  const auto window = bench_window();
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack.attack_window(model, window));
  }
}
BENCHMARK(BM_AttackSearch)
    ->Arg(static_cast<int>(attack::SearchKind::kOrderedGreedy))
    ->Arg(static_cast<int>(attack::SearchKind::kGreedy))
    ->Arg(static_cast<int>(attack::SearchKind::kBeam))
    ->Arg(static_cast<int>(attack::SearchKind::kGradientGuided));

}  // namespace

int main(int argc, char** argv) {
  auto config = goodones::bench::announce_config();
  goodones::core::RiskProfilingFramework framework(goodones::bench::bgms_domain(), config);
  reproduce_appendix_a(framework);
  return goodones::bench::run_microbenchmarks(argc, argv);
}
