// Reproduces paper Fig. 5: kNN anomaly detection on sample glucose traces of
// patients A_5 (less vulnerable) and A_2 (more vulnerable) under
// *indiscriminate* training. The paper's point (RQ1): the indiscriminately
// trained detector misses far more adversarial samples (false negatives) on
// the more vulnerable patient. We render the TP/FN timeline as text markers
// (o = detected true positive, x = missed false negative).
#include "bench_common.hpp"

#include "detect/knn.hpp"

namespace {

using namespace goodones;

void reproduce_fig5(core::RiskProfilingFramework& framework) {
  // Indiscriminate training = the "All Patients" strategy.
  std::vector<std::size_t> all_victims(framework.entities().size());
  for (std::size_t i = 0; i < all_victims.size(); ++i) all_victims[i] = i;
  const auto eval = framework.evaluate_strategy(detect::DetectorKind::kKnn, all_victims);

  common::AsciiTable table(
      "Fig. 5 — kNN on sample traces, indiscriminate (All Patients) training",
      {"Patient", "Malicious windows", "Flagged (TP)", "Missed (FN)", "FN rate"});
  common::CsvTable csv({"patient", "malicious", "tp", "fn", "fn_rate"});
  const auto add_patient = [&](std::size_t index) {
    const auto& cm = eval.per_victim[index];
    const auto id = framework.entities()[index].name;
    table.add_row({id, std::to_string(cm.tp + cm.fn), std::to_string(cm.tp),
                   std::to_string(cm.fn), common::fixed(cm.false_negative_rate(), 3)});
    csv.add_row({id, std::to_string(cm.tp + cm.fn), std::to_string(cm.tp),
                 std::to_string(cm.fn), common::format_double(cm.false_negative_rate())});
  };
  add_patient(5);  // A_5, less vulnerable
  add_patient(2);  // A_2, more vulnerable
  table.print();
  bench::save_artifact(csv, "fig5_trace_detection.csv");

  // Timeline markers like the paper's green/red dots. The figure's message
  // is the TP:FN proportion along each trace; render it as a marker strip.
  const auto render_markers = [&](std::size_t patient) {
    std::string line;
    const auto& per_victim = eval.per_victim[patient];
    const std::size_t malicious_total = per_victim.tp + per_victim.fn;
    if (malicious_total == 0) return line;
    const std::size_t total = std::min<std::size_t>(malicious_total, 60);
    const double tp_fraction =
        static_cast<double>(per_victim.tp) / static_cast<double>(malicious_total);
    for (std::size_t i = 0; i < total; ++i) {
      const double position = static_cast<double>(i) / static_cast<double>(total);
      line += position < tp_fraction ? 'o' : 'x';
    }
    return line;
  };
  std::cout << "A_5 malicious-window markers (o=TP, x=FN): " << render_markers(5) << "\n";
  std::cout << "A_2 malicious-window markers (o=TP, x=FN): " << render_markers(2) << "\n";
  std::cout << "Interpretation (paper RQ1): indiscriminate training yields a higher\n"
               "false-negative rate for the more vulnerable patient (A_2) than for the\n"
               "less vulnerable one (A_5).\n";
}

void BM_KnnQuery(benchmark::State& state) {
  common::Rng rng(3);
  const auto make_window = [&](double level) {
    nn::Matrix w(12, 4);
    for (std::size_t t = 0; t < 12; ++t) w(t, 0) = level + rng.normal(0.0, 0.02);
    return w;
  };
  std::vector<nn::Matrix> benign;
  std::vector<nn::Matrix> malicious;
  for (int i = 0; i < state.range(0); ++i) {
    benign.push_back(make_window(0.2));
    malicious.push_back(make_window(0.8));
  }
  detect::KnnDetector detector;
  detector.fit(benign, malicious);
  const auto query = make_window(0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.anomaly_score(query));
  }
  state.SetItemsProcessed(state.iterations() * detector.train_size());
}
BENCHMARK(BM_KnnQuery)->Arg(500)->Arg(2000);

}  // namespace

int main(int argc, char** argv) {
  auto config = goodones::bench::announce_config();
  goodones::core::RiskProfilingFramework framework(goodones::bench::bgms_domain(), config);
  reproduce_fig5(framework);
  return goodones::bench::run_microbenchmarks(argc, argv);
}
