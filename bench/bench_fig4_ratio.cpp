// Reproduces paper Fig. 4: ratio of normal to abnormal data instances in
// each patient's benign trace. Less vulnerable patients (A_5, B_1, B_2)
// should show the highest ratios; the most vulnerable (A_2) the lowest.
#include "bench_common.hpp"

#include "data/labels.hpp"
#include "data/timeseries.hpp"
#include "domains/bgms/glucose_state.hpp"

namespace {

using namespace goodones;

void reproduce_fig4(core::RiskProfilingFramework& framework) {
  const auto& profiling = framework.profiling();
  const auto& entities = framework.entities();

  common::AsciiTable table("Fig. 4 — Normal-to-abnormal ratio of benign traces",
                           {"Patient", "Ratio", "Bar"});
  common::CsvTable csv({"patient", "ratio"});
  for (std::size_t i = 0; i < entities.size(); ++i) {
    const double ratio = profiling.benign_normal_ratio[i];
    const auto bar_len = static_cast<std::size_t>(ratio * 40.0);
    table.add_row({entities[i].name, common::fixed(ratio, 3),
                   std::string(bar_len, '#')});
    csv.add_row({entities[i].name, common::format_double(ratio)});
  }
  table.print();
  bench::save_artifact(csv, "fig4_normal_ratio.csv");

  std::cout << "Paper shape check: A_5 and B_2 highest, A_2 lowest.\n"
            << "Measured: A_5=" << common::fixed(profiling.benign_normal_ratio[5], 3)
            << " B_2=" << common::fixed(profiling.benign_normal_ratio[8], 3)
            << " A_2=" << common::fixed(profiling.benign_normal_ratio[2], 3) << "\n";
}

void BM_NormalRatioComputation(benchmark::State& state) {
  bgms::CohortConfig config;
  config.train_steps = static_cast<std::size_t>(state.range(0));
  config.test_steps = 16;
  const auto trace = bgms::generate_patient({bgms::Subset::kA, 0}, config);
  const auto series = bgms::to_series(trace.train);
  const auto cgm = series.channel(bgms::kCgm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        data::normal_ratio(cgm, series.regimes, bgms::glycemic_thresholds()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NormalRatioComputation)->Arg(1000)->Arg(10000);

void BM_MealContextDerivation(benchmark::State& state) {
  bgms::CohortConfig config;
  config.train_steps = static_cast<std::size_t>(state.range(0));
  config.test_steps = 16;
  const auto trace = bgms::generate_patient({bgms::Subset::kB, 3}, config);
  const auto series = bgms::to_series(trace.train);
  const auto carbs = series.channel(bgms::kCarbs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bgms::derive_meal_context(carbs));
  }
}
BENCHMARK(BM_MealContextDerivation)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  auto config = goodones::bench::announce_config();
  goodones::core::RiskProfilingFramework framework(goodones::bench::bgms_domain(), config);
  reproduce_fig4(framework);
  return goodones::bench::run_microbenchmarks(argc, argv);
}
