// Reproduces paper Fig. 4: ratio of normal to abnormal data instances in
// each patient's benign trace. Less vulnerable patients (A_5, B_1, B_2)
// should show the highest ratios; the most vulnerable (A_2) the lowest.
#include "bench_common.hpp"

#include "data/timeseries.hpp"

namespace {

using namespace goodones;

void reproduce_fig4(core::RiskProfilingFramework& framework) {
  const auto& profiling = framework.profiling();
  const auto& cohort = framework.cohort();

  common::AsciiTable table("Fig. 4 — Normal-to-abnormal ratio of benign traces",
                           {"Patient", "Ratio", "Bar"});
  common::CsvTable csv({"patient", "ratio"});
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    const double ratio = profiling.benign_normal_ratio[i];
    const auto bar_len = static_cast<std::size_t>(ratio * 40.0);
    table.add_row({sim::to_string(cohort[i].params.id), common::fixed(ratio, 3),
                   std::string(bar_len, '#')});
    csv.add_row({sim::to_string(cohort[i].params.id), common::format_double(ratio)});
  }
  table.print();
  bench::save_artifact(csv, "fig4_normal_ratio.csv");

  std::cout << "Paper shape check: A_5 and B_2 highest, A_2 lowest.\n"
            << "Measured: A_5=" << common::fixed(profiling.benign_normal_ratio[5], 3)
            << " B_2=" << common::fixed(profiling.benign_normal_ratio[8], 3)
            << " A_2=" << common::fixed(profiling.benign_normal_ratio[2], 3) << "\n";
}

void BM_NormalRatioComputation(benchmark::State& state) {
  sim::CohortConfig config;
  config.train_steps = static_cast<std::size_t>(state.range(0));
  config.test_steps = 16;
  const auto trace = sim::generate_patient({sim::Subset::kA, 0}, config);
  const auto series = data::to_series(trace.train);
  const auto cgm = series.channel(data::kCgm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::normal_to_abnormal_ratio(cgm, series.context));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NormalRatioComputation)->Arg(1000)->Arg(10000);

void BM_MealContextDerivation(benchmark::State& state) {
  sim::CohortConfig config;
  config.train_steps = static_cast<std::size_t>(state.range(0));
  config.test_steps = 16;
  const auto trace = sim::generate_patient({sim::Subset::kB, 3}, config);
  const auto series = data::to_series(trace.train);
  const auto carbs = series.channel(data::kCarbs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::derive_meal_context(carbs));
  }
}
BENCHMARK(BM_MealContextDerivation)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  auto config = goodones::bench::announce_config();
  goodones::core::RiskProfilingFramework framework(config);
  reproduce_fig4(framework);
  return goodones::bench::run_microbenchmarks(argc, argv);
}
