// Measures the ingest/replay path the column store unlocks: a recorded
// synthtel fleet trace is streamed into a persisted data::ColumnStore once,
// then re-scored three ways on the SAME stride-1 window set —
//
//   replay_mmap_score_views      zero-copy WindowViews straight off the
//                                mmapped store into score_views (the
//                                backfill shape: window assembly, not the
//                                LSTM, is on the critical path)
//   replay_materialized_score    the same windows copied into ScoreRequests
//                                first (what replay cost before the store)
//   daemon_score_roundtrip       the per-request legacy baseline: one
//                                Score round trip per window over the
//                                socket, windows re-sent every time
//   daemon_score_latest          Ingest once, then ScoreLatest batches —
//                                no window bytes on the wire at all
//
// plus the wire-byte accounting behind the protocol change: bytes/window
// for streaming ticks once (Ingest) vs re-sending every window (Score).
// For the wire_bytes_* records ns_per_op carries BYTES PER SCORED WINDOW
// (there is no time axis), and wire_bytes_reduction carries the ratio.
// Results land in BENCH_ingest.json; the acceptance floor is replay ≥ 2×
// the per-request round trip and a ≥ 10× wire-byte reduction.
#include "bench_common.hpp"

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "data/column_store.hpp"
#include "data/window.hpp"
#include "domains/synthtel/adapter.hpp"
#include "serve/daemon.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"
#include "serve/wire.hpp"

namespace {

using namespace goodones;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One entity's recorded trace: the raw ticks the store ingests and the
/// stride-1 window set every scoring mode below replays.
struct Trace {
  std::string entity;
  nn::Matrix ticks;
  std::vector<data::Regime> regimes;
};

struct Fixture {
  std::shared_ptr<const core::DomainAdapter> domain;
  std::unique_ptr<core::RiskProfilingFramework> framework;
  std::unique_ptr<serve::ScoringService> service;
  std::vector<Trace> traces;
  std::filesystem::path store_root;
  std::size_t seq_len = data::kDefaultSeqLen;
  std::size_t total_windows = 0;

  Fixture() {
    domain = std::make_shared<synthtel::SynthtelDomain>(3);
    core::FrameworkConfig config = domain->prepare(core::FrameworkConfig::fast());
    config.population.train_steps = 2000;
    config.population.test_steps = 600;
    config.population.seed = 11;
    config.registry.forecaster.hidden = 12;
    config.registry.forecaster.head_hidden = 8;
    config.registry.forecaster.epochs = 2;
    config.registry.train_window_step = 6;
    config.registry.aggregate_window_step = 40;
    config.profiling_campaign.window_step = 8;
    config.evaluation_campaign.window_step = 8;
    config.detector_benign_stride = 8;
    config.random_runs = 1;
    config.seed = 77;
    framework = std::make_unique<core::RiskProfilingFramework>(domain, config);

    service = std::make_unique<serve::ScoringService>(
        serve::build_serving_model(*framework, detect::DetectorKind::kKnn));

    // The recorded fleet trace: every entity's held-out test series,
    // persisted once — replay reopens it mmap-backed.
    store_root = std::filesystem::temp_directory_path() /
                 ("goodones_bench_ingest_" + std::to_string(::getpid()));
    std::filesystem::remove_all(store_root);
    data::ColumnStoreConfig store_config;
    store_config.root = store_root;
    data::ColumnStore store(store_config, domain->spec().num_channels);
    for (const auto& entity : framework->entities()) {
      store.append_block(entity.name, entity.test.values, entity.test.regimes);
      traces.push_back({entity.name, entity.test.values, entity.test.regimes});
      total_windows += entity.test.steps() - seq_len + 1;
    }
    store.flush();
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

bench::BenchRecord windows_record(const std::string& name, std::size_t reps,
                                  std::size_t windows_per_rep, double seconds) {
  const double total = static_cast<double>(reps * windows_per_rep);
  bench::BenchRecord record;
  record.name = name;
  record.iters = reps;
  record.ns_per_op = seconds * 1e9 / total;
  record.probes_per_sec = total / seconds;
  return record;
}

/// Cuts the full stride-1 window set of one entity as zero-copy views.
std::vector<data::WindowView> cut_views(const data::ColumnStore& store,
                                        const std::string& entity, std::size_t seq_len) {
  std::vector<data::WindowView> views;
  const std::uint64_t ticks = store.ticks(entity);
  for (std::uint64_t end = seq_len - 1; end < ticks; ++end) {
    views.push_back(store.window_at(entity, end, seq_len));
  }
  return views;
}

/// (a) + (b): the in-process replay pair — mmapped views vs materialized
/// copies, identical windows, identical scoring core.
void run_replay(std::vector<bench::BenchRecord>& records) {
  const Fixture& f = fixture();
  data::ColumnStoreConfig config;
  config.root = f.store_root;
  const data::ColumnStore store(config, f.domain->spec().num_channels);

  const std::size_t reps = bench::bench_reps(5);
  auto start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (const Trace& trace : f.traces) {
      const std::vector<data::WindowView> views = cut_views(store, trace.entity, f.seq_len);
      benchmark::DoNotOptimize(f.service->score_views(
          trace.entity, std::span<const data::WindowView>(views)));
    }
  }
  records.push_back(
      windows_record("replay_mmap_score_views", reps, f.total_windows, seconds_since(start)));

  start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) {
    for (const Trace& trace : f.traces) {
      serve::ScoreRequest request;
      request.entity = trace.entity;
      for (const data::WindowView& view : cut_views(store, trace.entity, f.seq_len)) {
        request.windows.push_back({view.materialize(), view.regime()});
      }
      benchmark::DoNotOptimize(f.service->score(request));
    }
  }
  records.push_back(windows_record("replay_materialized_score", reps, f.total_windows,
                                   seconds_since(start)));

  const std::size_t n = records.size();
  std::cout << "in-process replay (windows/sec): mmap views "
            << records[n - 2].probes_per_sec << " vs materialized "
            << records[n - 1].probes_per_sec << "\n";
}

/// (c) + (d): over the socket — the per-request legacy baseline vs the
/// ingest-once/score-latest protocol, against one daemon.
void run_daemon_modes(std::vector<bench::BenchRecord>& records) {
  const Fixture& f = fixture();
  serve::DaemonConfig config;
  const std::filesystem::path socket_path =
      std::filesystem::temp_directory_path() /
      ("goodones_bench_ingest_" + std::to_string(::getpid()) + ".sock");
  config.listen = common::Endpoint::unix_socket(socket_path);
  config.registry_root = core::artifacts_dir() / "bench_models";
  config.adaptive_enabled = false;  // measure the wire, not the profiler
  serve::Daemon daemon(serve::clone_serving_model(*f.service->model()), config);
  daemon.start();
  serve::DaemonClient client(socket_path);

  // Legacy baseline: one Score round trip per window, window bytes re-sent
  // every time. Single rep — the trace is the workload.
  const std::size_t reps = 1;
  auto start = Clock::now();
  for (const Trace& trace : f.traces) {
    const std::size_t windows = trace.ticks.rows() - f.seq_len + 1;
    for (std::size_t w = 0; w < windows; ++w) {
      serve::ScoreRequest request;
      request.entity = trace.entity;
      serve::TelemetryWindow window;
      window.regime = trace.regimes[w + f.seq_len - 1];
      window.features = nn::Matrix(f.seq_len, trace.ticks.cols());
      for (std::size_t t = 0; t < f.seq_len; ++t) {
        for (std::size_t c = 0; c < trace.ticks.cols(); ++c) {
          window.features(t, c) = trace.ticks(w + t, c);
        }
      }
      request.windows.push_back(std::move(window));
      benchmark::DoNotOptimize(client.score(request));
    }
  }
  records.push_back(windows_record("daemon_score_roundtrip_per_window", reps,
                                   f.total_windows, seconds_since(start)));

  // Ingest-once: stream every trace into the daemon's store...
  start = Clock::now();
  for (const Trace& trace : f.traces) {
    serve::wire::IngestRequest request;
    request.entity = trace.entity;
    request.ticks = trace.ticks;
    request.regimes = trace.regimes;
    benchmark::DoNotOptimize(client.ingest(request));
  }
  const double ingest_seconds = seconds_since(start);

  // ... then ScoreLatest batches: zero window bytes on the wire.
  constexpr std::size_t kLatestBatch = 64;
  std::size_t latest_windows = 0;
  start = Clock::now();
  for (const Trace& trace : f.traces) {
    serve::wire::ScoreLatestRequest request;
    request.entity = trace.entity;
    request.count = kLatestBatch;
    const serve::ScoreResponse response = client.score_latest(request);
    latest_windows += response.windows.size();
  }
  const double latest_seconds = seconds_since(start);
  records.push_back(
      windows_record("daemon_score_latest_batch", 1, latest_windows, latest_seconds));

  bench::BenchRecord ingest_record;
  ingest_record.name = "daemon_ingest_ticks_per_sec";
  ingest_record.iters = 1;
  std::size_t total_ticks = 0;
  for (const Trace& trace : f.traces) total_ticks += trace.ticks.rows();
  ingest_record.ns_per_op = ingest_seconds * 1e9 / static_cast<double>(total_ticks);
  ingest_record.probes_per_sec = static_cast<double>(total_ticks) / ingest_seconds;
  records.push_back(ingest_record);

  daemon.stop();
  const std::size_t n = records.size();
  std::cout << "daemon (windows/sec): per-request Score "
            << records[n - 3].probes_per_sec << ", ScoreLatest batch "
            << records[n - 2].probes_per_sec << "; ingest "
            << records[n - 1].probes_per_sec << " ticks/sec\n";
}

/// The protocol's byte accounting: what crosses the wire per scored window
/// when history streams once (Ingest) vs when every window is re-sent
/// (per-request Score on the same stride-1 window set).
void run_wire_bytes(std::vector<bench::BenchRecord>& records) {
  const Fixture& f = fixture();
  std::size_t ingest_bytes = 0;
  std::size_t score_bytes = 0;
  for (const Trace& trace : f.traces) {
    serve::wire::IngestRequest ingest;
    ingest.entity = trace.entity;
    ingest.ticks = trace.ticks;
    ingest.regimes = trace.regimes;
    ingest_bytes += serve::wire::encode_ingest_request(ingest).size();

    const std::size_t windows = trace.ticks.rows() - f.seq_len + 1;
    for (std::size_t w = 0; w < windows; ++w) {
      serve::ScoreRequest request;
      request.entity = trace.entity;
      serve::TelemetryWindow window;
      window.regime = trace.regimes[w + f.seq_len - 1];
      window.features = nn::Matrix(f.seq_len, trace.ticks.cols());
      for (std::size_t t = 0; t < f.seq_len; ++t) {
        for (std::size_t c = 0; c < trace.ticks.cols(); ++c) {
          window.features(t, c) = trace.ticks(w + t, c);
        }
      }
      request.windows.push_back(std::move(window));
      score_bytes += serve::wire::encode_score_request(request).size();
    }
  }

  const double per_window_ingest =
      static_cast<double>(ingest_bytes) / static_cast<double>(f.total_windows);
  const double per_window_score =
      static_cast<double>(score_bytes) / static_cast<double>(f.total_windows);

  bench::BenchRecord ingest_record;
  ingest_record.name = "wire_bytes_ingest_per_window";
  ingest_record.iters = f.total_windows;
  ingest_record.ns_per_op = per_window_ingest;  // bytes, not ns — see header
  records.push_back(ingest_record);
  bench::BenchRecord score_record;
  score_record.name = "wire_bytes_score_per_window";
  score_record.iters = f.total_windows;
  score_record.ns_per_op = per_window_score;
  records.push_back(score_record);
  bench::BenchRecord ratio_record;
  ratio_record.name = "wire_bytes_reduction";
  ratio_record.iters = f.total_windows;
  ratio_record.ns_per_op = per_window_score / per_window_ingest;
  records.push_back(ratio_record);

  std::cout << "wire bytes per scored window: ingest " << per_window_ingest
            << " vs re-sent Score " << per_window_score << " (x"
            << per_window_score / per_window_ingest << " reduction)\n";
}

void BM_WindowViewGather(benchmark::State& state) {
  const Fixture& f = fixture();
  data::ColumnStoreConfig config;
  config.root = f.store_root;
  const data::ColumnStore store(config, f.domain->spec().num_channels);
  const std::vector<data::WindowView> views =
      cut_views(store, f.traces.front().entity, f.seq_len);
  nn::Matrix out;
  std::size_t i = 0;
  for (auto _ : state) {
    views[i % views.size()].gather(out);
    benchmark::DoNotOptimize(out.data());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowViewGather);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "goodones ingest/replay bench (synthtel mini fleet, stride-1 "
               "windows over a persisted column store)\n";
  std::vector<bench::BenchRecord> records;
  run_replay(records);
  run_daemon_modes(records);
  run_wire_bytes(records);
  bench::save_bench_json(records, "ingest");
  const int rc = goodones::bench::run_microbenchmarks(argc, argv);
  std::filesystem::remove_all(fixture().store_root);
  return rc;
}
