// Reproduces paper Fig. 3: per-victim time-series risk profiles and the
// dendrograms from hierarchically clustering them, for Subset A and
// Subset B. Microbenchmarks time the clustering kernels.
#include "bench_common.hpp"

#include "cluster/distance.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace {

using namespace goodones;

void reproduce_fig3(core::RiskProfilingFramework& framework) {
  const auto& profiling = framework.profiling();
  const auto& entities = framework.entities();

  // Risk-profile summary (the paper plots the series; we print summary
  // statistics and persist the full series as CSV).
  common::AsciiTable profiles("Fig. 3 — Risk profiles (summary of R_t per patient)",
                              {"Patient", "Samples", "Mean risk", "Peak risk",
                               "Mean log1p(risk)"});
  common::CsvTable series_csv({"patient", "index", "risk"});
  for (std::size_t i = 0; i < profiling.profiles.size(); ++i) {
    const auto& profile = profiling.profiles[i];
    const auto log_scaled = profile.log_scaled();
    profiles.add_row({entities[i].name,
                      std::to_string(profile.values.size()),
                      common::fixed(profile.mean(), 1), common::fixed(profile.peak(), 1),
                      common::fixed(common::mean(log_scaled), 3)});
    for (std::size_t k = 0; k < profile.values.size(); ++k) {
      series_csv.add_row({entities[i].name, std::to_string(k),
                          common::format_double(profile.values[k])});
    }
  }
  profiles.print();
  bench::save_artifact(series_csv, "fig3_risk_profiles.csv");

  // Dendrograms, one per subset, exactly as the paper's figure lays out.
  const auto render = [&](const cluster::Dendrogram& dendrogram, std::size_t offset,
                          const char* title) {
    std::vector<std::string> names;
    for (std::size_t i = 0; i < 6; ++i) {
      names.push_back(entities[offset + i].name);
    }
    std::cout << "\n== Fig. 3 — dendrogram, " << title << " ==\n"
              << dendrogram.render_ascii(names);
    std::cout << "merge heights:";
    for (const auto& merge : dendrogram.merges()) {
      std::cout << " " << common::fixed(merge.height, 2);
    }
    std::cout << "\nsuggested clusters (max-gap cut): "
              << dendrogram.suggest_cluster_count() << "\n";
  };
  render(profiling.dendrograms[0], 0, "Subset A");
  render(profiling.dendrograms[1], 6, "Subset B");

  common::CsvTable merges_csv({"subset", "left", "right", "height", "size"});
  const auto dump = [&](const cluster::Dendrogram& dendrogram, const char* subset) {
    for (const auto& merge : dendrogram.merges()) {
      merges_csv.add_row({subset, std::to_string(merge.left), std::to_string(merge.right),
                          common::format_double(merge.height), std::to_string(merge.size)});
    }
  };
  dump(profiling.dendrograms[0], "A");
  dump(profiling.dendrograms[1], "B");
  bench::save_artifact(merges_csv, "fig3_dendrogram_merges.csv");
}

// --- microbenchmarks -------------------------------------------------------

std::vector<std::vector<double>> synthetic_profiles(std::size_t count, std::size_t length) {
  common::Rng rng(17);
  std::vector<std::vector<double>> profiles(count);
  for (auto& p : profiles) {
    p.resize(length);
    const double level = rng.uniform(0.0, 10.0);
    for (double& v : p) v = level + rng.normal(0.0, 1.0);
  }
  return profiles;
}

void BM_EuclideanDistanceMatrix(benchmark::State& state) {
  const auto profiles = synthetic_profiles(12, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cluster::distance_matrix(profiles, cluster::ProfileDistance::kEuclidean));
  }
}
BENCHMARK(BM_EuclideanDistanceMatrix)->Arg(256)->Arg(1024);

void BM_DtwDistance(benchmark::State& state) {
  const auto profiles = synthetic_profiles(2, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::dtw(profiles[0], profiles[1], 16));
  }
}
BENCHMARK(BM_DtwDistance)->Arg(128)->Arg(512);

void BM_AgglomerativeClustering(benchmark::State& state) {
  const auto profiles = synthetic_profiles(static_cast<std::size_t>(state.range(0)), 64);
  const auto distances =
      cluster::distance_matrix(profiles, cluster::ProfileDistance::kEuclidean);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cluster::agglomerate(distances, cluster::Linkage::kAverage));
  }
}
BENCHMARK(BM_AgglomerativeClustering)->Arg(12)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  auto config = goodones::bench::announce_config();
  goodones::core::RiskProfilingFramework framework(goodones::bench::bgms_domain(), config);
  reproduce_fig3(framework);
  return goodones::bench::run_microbenchmarks(argc, argv);
}
