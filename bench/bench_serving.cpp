// Measures the serving path end to end: windows-scored/sec through a
// ScoringService whose bundle was round-tripped through the ModelRegistry
// (exactly what a deployed fleet would run), across request shapes — single
// window, per-entity batches, and mixed multi-entity traffic — plus the
// registry's own save/load latency, the detector score_batch speedup
// (MAD-GAN's batched latent inversion and kNN's blocked neighbor queries
// vs their per-window paths) and the adaptive loop's bundle hot-swap
// latency. Results land in BENCH_serving.json (name, iters, ns_per_op,
// probes_per_sec = windows/sec) so serving throughput is tracked across
// PRs.
#include "bench_common.hpp"

#include <chrono>
#include <filesystem>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include <unistd.h>

#include "common/rng.hpp"
#include "core/metrics.hpp"
#include "data/window.hpp"
#include "detect/knn.hpp"
#include "detect/madgan.hpp"
#include "domains/synthtel/adapter.hpp"
#include "serve/daemon.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"

namespace {

using namespace goodones;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Mini synthtel pipeline (the cheap domain): trains, bundles, persists and
/// reloads once; every timing below runs against the reloaded bundle.
struct Fixture {
  std::shared_ptr<const core::DomainAdapter> domain;
  std::unique_ptr<core::RiskProfilingFramework> framework;
  std::unique_ptr<serve::ScoringService> service;
  std::vector<serve::ScoreRequest> mixed_traffic;  // one request per entity
  double save_seconds = 0.0;
  double load_seconds = 0.0;

  Fixture() {
    domain = std::make_shared<synthtel::SynthtelDomain>(3);
    core::FrameworkConfig config = domain->prepare(core::FrameworkConfig::fast());
    config.population.train_steps = 2000;
    config.population.test_steps = 600;
    config.population.seed = 11;
    config.registry.forecaster.hidden = 12;
    config.registry.forecaster.head_hidden = 8;
    config.registry.forecaster.epochs = 2;
    config.registry.train_window_step = 6;
    config.registry.aggregate_window_step = 40;
    config.profiling_campaign.window_step = 8;
    config.evaluation_campaign.window_step = 8;
    config.detector_benign_stride = 8;
    config.random_runs = 1;
    config.seed = 77;
    framework = std::make_unique<core::RiskProfilingFramework>(domain, config);

    serve::ServingModel model =
        serve::build_serving_model(*framework, detect::DetectorKind::kKnn);

    const serve::ModelRegistry registry(core::artifacts_dir() / "bench_models");
    const auto save_start = Clock::now();
    registry.save(model);
    save_seconds = seconds_since(save_start);
    const auto load_start = Clock::now();
    serve::ServingModel reloaded =
        registry.load(serve::registry_key(*framework, detect::DetectorKind::kKnn));
    load_seconds = seconds_since(load_start);

    service = std::make_unique<serve::ScoringService>(std::move(reloaded));

    // Mixed traffic: every entity sends its held-out test windows.
    const auto& entities = framework->entities();
    data::WindowConfig window_config = framework->config().window;
    window_config.step = 3;
    for (const auto& entity : entities) {
      serve::ScoreRequest request;
      request.entity = entity.name;
      for (const auto& window : data::make_windows(entity.test, window_config)) {
        request.windows.push_back({window.features, window.regime});
        if (request.windows.size() >= 64) break;
      }
      mixed_traffic.push_back(std::move(request));
    }
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

/// Times `run` which scores `windows_per_rep` windows per call.
template <typename Fn>
bench::BenchRecord time_windows(const std::string& name, std::size_t reps,
                                std::size_t windows_per_rep, Fn&& run) {
  const auto start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) run();
  const double seconds = seconds_since(start);
  const double total = static_cast<double>(reps * windows_per_rep);
  bench::BenchRecord record;
  record.name = name;
  record.iters = reps;
  record.ns_per_op = seconds * 1e9 / total;
  record.probes_per_sec = total / seconds;
  return record;
}

void run_serving_modes(std::vector<bench::BenchRecord>& records) {
  const Fixture& f = fixture();
  const auto& service = *f.service;

  // (a) single-window request (interactive shape).
  serve::ScoreRequest single = f.mixed_traffic.front();
  single.windows.resize(1);
  records.push_back(time_windows("serve_single_window", 400, 1, [&] {
    benchmark::DoNotOptimize(service.score(single));
  }));

  // (b) one entity, batched windows (telemetry backfill shape).
  serve::ScoreRequest batched = f.mixed_traffic.front();
  records.push_back(
      time_windows("serve_one_entity_batch", 50, batched.windows.size(), [&] {
        benchmark::DoNotOptimize(service.score(batched));
      }));

  // (c) mixed fleet traffic: all entities at once, sharded across the pool.
  std::size_t total_windows = 0;
  for (const auto& request : f.mixed_traffic) total_windows += request.windows.size();
  records.push_back(time_windows("serve_mixed_fleet_traffic", 30, total_windows, [&] {
    benchmark::DoNotOptimize(
        service.score_batch(std::span<const serve::ScoreRequest>(f.mixed_traffic)));
  }));

  // Registry round-trip latency (train once, score forever hinges on it).
  bench::BenchRecord save_record;
  save_record.name = "registry_save_seconds";
  save_record.iters = 1;
  save_record.ns_per_op = f.save_seconds * 1e9;
  records.push_back(save_record);
  bench::BenchRecord load_record;
  load_record.name = "registry_load_seconds";
  load_record.iters = 1;
  load_record.ns_per_op = f.load_seconds * 1e9;
  records.push_back(load_record);

  std::cout << "serving throughput (windows/sec): single "
            << records[0].probes_per_sec << ", one-entity batch "
            << records[1].probes_per_sec << ", mixed fleet "
            << records[2].probes_per_sec << "\n"
            << "registry: save " << f.save_seconds * 1e3 << " ms, load "
            << f.load_seconds * 1e3 << " ms\n";
}

/// Detector score_batch vs per-window anomaly_score, on the detectors the
/// serving path actually routes to. MAD-GAN is the headline (its latent
/// inversion is the per-window cost the batch amortizes); kNN shows the
/// blocked-query effect on the sample-level path.
void run_detector_batching(std::vector<bench::BenchRecord>& records) {
  const Fixture& f = fixture();
  auto& framework = *f.framework;

  // MAD-GAN: train a miniature GAN on one entity's benign windows, then
  // score a request-sized batch both ways.
  detect::MadGanConfig gan_config;
  gan_config.epochs = 6;
  gan_config.hidden = 16;
  gan_config.num_signals = framework.domain().spec().num_channels;
  gan_config.max_train_windows = 300;
  gan_config.calibration_windows = 64;
  gan_config.inversion_steps = 15;
  detect::MadGan madgan(gan_config);
  const auto benign_windows = framework.benign_train_windows(0);
  madgan.fit(benign_windows, {});

  std::vector<nn::Matrix> gan_batch(benign_windows.begin(),
                                    benign_windows.begin() +
                                        std::min<std::size_t>(32, benign_windows.size()));
  records.push_back(time_windows("madgan_per_window_score", 3, gan_batch.size(), [&] {
    for (const auto& window : gan_batch) {
      benchmark::DoNotOptimize(madgan.anomaly_score(window));
    }
  }));
  records.push_back(time_windows("madgan_score_batch", 3, gan_batch.size(), [&] {
    benchmark::DoNotOptimize(madgan.score_batch(std::span<const nn::Matrix>(gan_batch)));
  }));

  // kNN: the bundle's own cluster detector consumes sample-level rows.
  detect::KnnDetector knn;
  const auto knn_benign = framework.benign_train_samples(0);
  const auto knn_malicious = framework.malicious_samples(framework.profiling_outcomes(0));
  std::vector<nn::Matrix> knn_mal = knn_malicious;
  if (knn_mal.empty()) knn_mal.push_back(knn_benign.front());
  knn.fit(knn_benign, knn_mal);
  std::vector<nn::Matrix> knn_batch(knn_benign.begin(),
                                    knn_benign.begin() +
                                        std::min<std::size_t>(64, knn_benign.size()));
  records.push_back(time_windows("knn_per_window_score", 20, knn_batch.size(), [&] {
    for (const auto& sample : knn_batch) {
      benchmark::DoNotOptimize(knn.anomaly_score(sample));
    }
  }));
  records.push_back(time_windows("knn_score_batch", 20, knn_batch.size(), [&] {
    benchmark::DoNotOptimize(knn.score_batch(std::span<const nn::Matrix>(knn_batch)));
  }));

  const double madgan_speedup =
      records[records.size() - 4].probes_per_sec > 0
          ? records[records.size() - 3].probes_per_sec /
                records[records.size() - 4].probes_per_sec
          : 0.0;
  std::cout << "detector batching (windows/sec): MAD-GAN per-window "
            << records[records.size() - 4].probes_per_sec << " vs batched "
            << records[records.size() - 3].probes_per_sec << " (x" << madgan_speedup
            << "), kNN per-window " << records[records.size() - 2].probes_per_sec
            << " vs batched " << records[records.size() - 1].probes_per_sec << "\n";
}

/// Mirroring overhead: the same mixed-fleet shape as run_serving_modes,
/// but with a canary candidate staged. At the default 10% sample rate the
/// primary path should stay within ~10% of the canary-off number (the
/// BENCHMARKS.md target); the full-mirror row bounds the worst case.
void run_canary_overhead(std::vector<bench::BenchRecord>& records) {
  const Fixture& f = fixture();
  std::size_t total_windows = 0;
  for (const auto& request : f.mixed_traffic) total_windows += request.windows.size();

  const auto canaried_run = [&](const char* name, std::uint64_t sample_ppm) {
    serve::ScoringServiceConfig config;
    config.canary.sample_per_million = sample_ppm;
    config.canary.auto_decide = false;  // measure mirroring, not promotion
    serve::ScoringService service(serve::clone_serving_model(*f.service->model()),
                                  config);
    serve::ServingModel candidate = serve::clone_serving_model(*service.model());
    candidate.generation = 1;
    service.install_candidate(std::move(candidate));
    records.push_back(time_windows(name, 30, total_windows, [&] {
      benchmark::DoNotOptimize(
          service.score_batch(std::span<const serve::ScoreRequest>(f.mixed_traffic)));
    }));
  };
  canaried_run("serve_mixed_fleet_canary_10pct", 100000);
  canaried_run("serve_mixed_fleet_canary_full_mirror", 1000000);

  const std::size_t n = records.size();
  std::cout << "canary mirroring (windows/sec): 10% sample "
            << records[n - 2].probes_per_sec << ", full mirror "
            << records[n - 1].probes_per_sec << "\n";
}

/// Latency of the adaptive loop's atomic bundle publication: clone N
/// generations up front, then time swap_model alone (what a refresh adds on
/// top of its rebuild).
void run_hot_swap(std::vector<bench::BenchRecord>& records) {
  const Fixture& f = fixture();
  serve::ScoringService service(serve::clone_serving_model(*f.service->model()),
                                {.threads = 2});
  constexpr std::size_t kSwaps = 16;
  std::vector<serve::ServingModel> generations;
  generations.reserve(kSwaps);
  for (std::size_t i = 0; i < kSwaps; ++i) {
    serve::ServingModel next = serve::clone_serving_model(*service.model());
    next.generation = i + 1;
    generations.push_back(std::move(next));
  }

  const auto start = Clock::now();
  for (auto& model : generations) service.swap_model(std::move(model));
  const double seconds = seconds_since(start);

  bench::BenchRecord record;
  record.name = "bundle_hot_swap_seconds";
  record.iters = kSwaps;
  record.ns_per_op = seconds * 1e9 / static_cast<double>(kSwaps);
  records.push_back(record);
  std::cout << "bundle hot swap: " << record.ns_per_op / 1e3 << " us per publish ("
            << kSwaps << " generations)\n";
}

/// The daemon round trip: the same single-window and one-entity-batch
/// shapes as run_serving_modes, but over the Unix socket through a
/// DaemonClient — so BENCH_serving.json tracks the IPC overhead (framing,
/// syscalls, connection-handler hop) against the in-process numbers.
void run_daemon_roundtrip(std::vector<bench::BenchRecord>& records) {
  const Fixture& f = fixture();
  serve::DaemonConfig config;
  const std::filesystem::path socket_path =
      std::filesystem::temp_directory_path() /
      ("goodones_bench_daemon_" + std::to_string(::getpid()) + ".sock");
  config.listen = common::Endpoint::unix_socket(socket_path);
  config.registry_root = core::artifacts_dir() / "bench_models";
  config.adaptive_enabled = false;  // measure the wire, not the profiler
  serve::Daemon daemon(serve::clone_serving_model(*f.service->model()), config);
  daemon.start();
  serve::DaemonClient client(socket_path);

  serve::ScoreRequest single = f.mixed_traffic.front();
  single.windows.resize(1);
  records.push_back(time_windows("daemon_single_window_roundtrip", 400, 1, [&] {
    benchmark::DoNotOptimize(client.score(single));
  }));

  const serve::ScoreRequest& batched = f.mixed_traffic.front();
  records.push_back(time_windows("daemon_one_entity_batch_roundtrip", 50,
                                 batched.windows.size(), [&] {
    benchmark::DoNotOptimize(client.score(batched));
  }));

  daemon.stop();
  const std::size_t n = records.size();
  std::cout << "daemon round trip (windows/sec over the socket): single "
            << records[n - 2].probes_per_sec << ", one-entity batch "
            << records[n - 1].probes_per_sec << "\n";
}

void BM_ScoreSingleWindow(benchmark::State& state) {
  const Fixture& f = fixture();
  serve::ScoreRequest single = f.mixed_traffic.front();
  single.windows.resize(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.service->score(single));
  }
}
BENCHMARK(BM_ScoreSingleWindow);

void BM_ScoreBatch(benchmark::State& state) {
  const Fixture& f = fixture();
  serve::ScoreRequest request = f.mixed_traffic.front();
  request.windows.resize(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.service->score(request));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ScoreBatch)->Arg(8)->Arg(32)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "goodones serving bench (synthtel mini fleet, bundle "
               "round-tripped through the ModelRegistry)\n";
  std::vector<bench::BenchRecord> records;
  run_serving_modes(records);
  run_detector_batching(records);
  run_canary_overhead(records);
  run_hot_swap(records);
  run_daemon_roundtrip(records);
  bench::save_bench_json(records, "serving");
  return goodones::bench::run_microbenchmarks(argc, argv);
}
