// Reproduces paper Fig. 8: precision of kNN, OneClassSVM and MAD-GAN under
// the four training strategies. Paper headline: less-vulnerable training
// costs kNN ~5% precision, gains OneClassSVM ~7.5%, and leaves MAD-GAN flat.
#include "bench_detector_grid.hpp"

#include "detect/ocsvm.hpp"

namespace {

using namespace goodones;

void BM_OcsvmFit(benchmark::State& state) {
  common::Rng rng(7);
  std::vector<nn::Matrix> benign;
  for (int i = 0; i < state.range(0); ++i) {
    nn::Matrix w(12, 4);
    for (std::size_t t = 0; t < 12; ++t) w(t, 0) = 0.3 + rng.normal(0.0, 0.05);
    benign.push_back(std::move(w));
  }
  detect::OcsvmConfig config;
  config.kernel = detect::Kernel::kRbf;
  config.max_train_points = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    detect::OneClassSvm detector(config);
    detector.fit(benign, {});
    benchmark::DoNotOptimize(detector.num_support_vectors());
  }
}
BENCHMARK(BM_OcsvmFit)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_OcsvmScore(benchmark::State& state) {
  common::Rng rng(9);
  std::vector<nn::Matrix> benign;
  for (int i = 0; i < 400; ++i) {
    nn::Matrix w(12, 4);
    for (std::size_t t = 0; t < 12; ++t) w(t, 0) = 0.3 + rng.normal(0.0, 0.05);
    benign.push_back(std::move(w));
  }
  detect::OcsvmConfig config;
  config.kernel = detect::Kernel::kRbf;
  detect::OneClassSvm detector(config);
  detector.fit(benign, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.anomaly_score(benign.front()));
  }
}
BENCHMARK(BM_OcsvmScore);

}  // namespace

int main(int argc, char** argv) {
  auto config = goodones::bench::announce_config();
  goodones::core::RiskProfilingFramework framework(goodones::bench::bgms_domain(), config);
  goodones::bench::render_metric_grid(
      framework, {"Fig. 8", "Precision", "fig8_precision.csv",
                  [](const goodones::core::ConfusionMatrix& cm) { return cm.precision(); }});
  return goodones::bench::run_microbenchmarks(argc, argv);
}
