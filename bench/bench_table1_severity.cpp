// Reproduces paper Table I: severity coefficients for glycemic state
// transitions, plus microbenchmarks of the risk-formula kernels.
#include "bench_common.hpp"

#include "data/labels.hpp"
#include "risk/profile.hpp"
#include "risk/severity.hpp"

namespace {

using namespace goodones;

void reproduce_table1() {
  common::AsciiTable table("Table I — Severity coefficients for state transitions",
                           {"Benign", "Adversarial", "Severity Coefficient (S)"});
  common::CsvTable csv({"benign", "adversarial", "severity"});
  for (const auto& entry : risk::severity_table()) {
    table.add_row({data::to_string(entry.benign), data::to_string(entry.adversarial),
                   common::fixed(entry.coefficient, 0)});
    csv.add_row({data::to_string(entry.benign), data::to_string(entry.adversarial),
                 common::format_double(entry.coefficient)});
  }
  table.print();
  bench::save_artifact(csv, "table1_severity.csv");
}

void BM_SeverityLookup(benchmark::State& state) {
  const auto states = {data::StateLabel::kLow, data::StateLabel::kNormal,
                       data::StateLabel::kHigh};
  for (auto _ : state) {
    for (const auto from : states) {
      for (const auto to : states) {
        benchmark::DoNotOptimize(risk::severity_coefficient(from, to));
      }
    }
  }
}
BENCHMARK(BM_SeverityLookup);

void BM_InstantaneousRisk(benchmark::State& state) {
  attack::WindowOutcome outcome;
  outcome.attack.benign_prediction = 95.0;
  outcome.attack.adversarial_prediction = 240.0;
  outcome.benign_predicted_state = data::StateLabel::kNormal;
  outcome.adversarial_predicted_state = data::StateLabel::kHigh;
  for (auto _ : state) {
    benchmark::DoNotOptimize(risk::instantaneous_risk(outcome));
  }
}
BENCHMARK(BM_InstantaneousRisk);

void BM_RiskProfileConstruction(benchmark::State& state) {
  std::vector<attack::WindowOutcome> outcomes(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    outcomes[i].attack.benign_prediction = 90.0 + static_cast<double>(i % 40);
    outcomes[i].attack.adversarial_prediction = 200.0 + static_cast<double>(i % 100);
    outcomes[i].benign_predicted_state = data::StateLabel::kNormal;
    outcomes[i].adversarial_predicted_state = data::StateLabel::kHigh;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(risk::build_profile("A_0", outcomes));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RiskProfileConstruction)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  reproduce_table1();
  return goodones::bench::run_microbenchmarks(argc, argv);
}
