// Measures the batched inference execution path against the scalar
// reference: forecaster probes/sec for (a) per-candidate scalar predict()
// calls, (b) predict_batch on unrelated windows (packed GEMMs, no shared
// rows), and (c) predict_batch on probe batches with shared prefixes (the
// greedy evasion shape), plus end-to-end greedy-campaign throughput across
// the execution modes: scalar probes, per-window batched, cross-window
// lockstep (one predict_batch per shard round), lockstep with
// mixed-precision scoring, and lockstep with fast-math probes
// (Precision::kFast polynomial gate transcendentals, final trajectories
// re-verified exactly). Results land in BENCH_batched_inference.json
// (name, iters, ns/op, probes/sec) so the speedup is tracked across PRs.
#include "bench_common.hpp"

#include <chrono>
#include <vector>

#include "attack/campaign.hpp"
#include "attack/evasion.hpp"
#include "common/rng.hpp"
#include "data/timeseries.hpp"
#include "data/window.hpp"
#include "domains/bgms/cohort.hpp"
#include "domains/bgms/patient.hpp"
#include "nn/simd.hpp"
#include "predict/bilstm_forecaster.hpp"

namespace {

using namespace goodones;
using Clock = std::chrono::steady_clock;

struct Fixture {
  std::unique_ptr<predict::BiLstmForecaster> model;
  std::vector<data::Window> windows;

  Fixture() {
    bgms::CohortConfig cohort;
    cohort.train_steps = 1200;
    cohort.test_steps = 400;
    cohort.seed = 9;
    const auto trace = bgms::generate_patient({bgms::Subset::kA, 2}, cohort);
    const auto train_series = bgms::to_series(trace.train);

    predict::ForecasterConfig config;
    config.hidden = 24;
    config.head_hidden = 16;
    config.epochs = 2;
    model = std::make_unique<predict::BiLstmForecaster>(
        config, predict::fit_forecaster_scaler(train_series.values, bgms::kCgm,
                                               bgms::kMinGlucose, bgms::kMaxGlucose));
    data::WindowConfig window_config;
    window_config.step = 4;
    model->train(data::make_windows(train_series, window_config));
    windows = data::make_windows(bgms::to_series(trace.test), {});
  }
};

Fixture& fixture() {
  static Fixture f;  // non-const: the mixed-precision mode flips scoring precision
  return f;
}

/// Probe batch in the greedy-search shape: copies of one window differing at
/// a single timestep.
std::vector<nn::Matrix> probe_batch(const nn::Matrix& base, std::size_t t, std::size_t n) {
  std::vector<nn::Matrix> probes(n, base);
  for (std::size_t vi = 0; vi < n; ++vi) {
    probes[vi](t, bgms::kCgm) = 180.0 + 40.0 * static_cast<double>(vi);
  }
  return probes;
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Times `probes` forecaster evaluations per rep and returns a record with
/// probes/sec; `run` must evaluate exactly `probes_per_rep` windows.
template <typename Fn>
bench::BenchRecord time_probes(const std::string& name, std::size_t reps,
                               std::size_t probes_per_rep, Fn&& run) {
  const auto start = Clock::now();
  for (std::size_t r = 0; r < reps; ++r) run();
  const double seconds = seconds_since(start);
  const double total = static_cast<double>(reps * probes_per_rep);
  bench::BenchRecord record;
  record.name = name;
  record.iters = reps;
  record.ns_per_op = seconds * 1e9 / total;
  record.probes_per_sec = total / seconds;
  return record;
}

void run_probe_modes(std::vector<bench::BenchRecord>& records) {
  const auto& f = fixture();
  const nn::Matrix& base = f.windows.front().features;
  const std::size_t batch_size = 6;  // AttackConfig default value_candidates
  const std::size_t reps = bench::bench_reps(400);

  // (a) scalar: one predict() per candidate.
  const auto probes = probe_batch(base, base.rows() - 1, batch_size);
  records.push_back(time_probes("probe_scalar_predict", reps, batch_size, [&] {
    for (const auto& p : probes) benchmark::DoNotOptimize(f.model->predict(p));
  }));

  // (b) batched, no shared rows: unrelated windows -> packed GEMMs only.
  std::vector<nn::Matrix> unrelated;
  for (std::size_t i = 0; i < batch_size; ++i) {
    unrelated.push_back(f.windows[1 + 7 * i].features);
  }
  records.push_back(time_probes("probe_batched_no_shared_prefix", reps, batch_size, [&] {
    benchmark::DoNotOptimize(f.model->predict_batch(unrelated));
  }));

  // (c) batched probe batches, editing the last / middle timestep: the
  // planner finds the shared prefix and the BiLSTM replays only the tail.
  records.push_back(time_probes("probe_batched_prefix_cache_last_step", reps, batch_size, [&] {
    benchmark::DoNotOptimize(f.model->predict_batch(probes));
  }));
  const auto mid_probes = probe_batch(base, base.rows() / 2, batch_size);
  records.push_back(time_probes("probe_batched_prefix_cache_mid_step", reps, batch_size, [&] {
    benchmark::DoNotOptimize(f.model->predict_batch(mid_probes));
  }));
}

/// End-to-end greedy evasion campaign across the execution modes.
void run_campaign_modes(std::vector<bench::BenchRecord>& records) {
  auto& f = fixture();
  common::ThreadPool pool(1);  // single-threaded: isolate the execution path

  struct Mode {
    const char* name;
    bool batched;
    bool cross_window;
    nn::Precision precision;
    /// Per-probe lane override (AttackConfig::probe_precision): unlike the
    /// model-level `precision`, this keeps the final trajectories re-verified
    /// through the exact model — the production fast-campaign shape.
    std::optional<nn::Precision> probe_precision;
  };

  const auto run_mode = [&](const Mode& mode) {
    attack::CampaignConfig config;
    config.window_step = 2;
    config.attack.search = attack::SearchKind::kOrderedGreedy;
    config.attack.batched_probes = mode.batched;
    config.attack.probe_precision = mode.probe_precision;
    config.cross_window_probes = mode.cross_window;
    config.shard_size = 16;  // lockstep merges up to 16 windows' probes per round
    f.model->set_scoring_precision(mode.precision);
    const auto start = Clock::now();
    const auto outcomes = attack::run_campaign(*f.model, f.windows, config, pool);
    const double seconds = seconds_since(start);
    f.model->set_scoring_precision(nn::Precision::kDouble);
    std::size_t probes = 0;
    for (const auto& o : outcomes) probes += o.attack.probes;
    bench::BenchRecord record;
    record.name = mode.name;
    record.iters = outcomes.size();
    record.ns_per_op = seconds * 1e9 / static_cast<double>(probes);
    record.probes_per_sec = static_cast<double>(probes) / seconds;
    records.push_back(record);
    return record;
  };

  const auto scalar =
      run_mode({"greedy_campaign_scalar", false, false, nn::Precision::kDouble, {}});
  const auto batched =
      run_mode({"greedy_campaign_batched", true, false, nn::Precision::kDouble, {}});
  const auto lockstep =
      run_mode({"greedy_campaign_lockstep", true, true, nn::Precision::kDouble, {}});
  const auto mixed =
      run_mode({"greedy_campaign_lockstep_mixed", true, true, nn::Precision::kMixed, {}});
  const auto fast = run_mode({"greedy_campaign_lockstep_fast", true, true,
                              nn::Precision::kDouble, nn::Precision::kFast});

  const double speedup = lockstep.probes_per_sec / scalar.probes_per_sec;
  bench::BenchRecord ratio;
  ratio.name = "greedy_campaign_speedup_x";
  ratio.iters = 1;
  ratio.probes_per_sec = speedup;
  records.push_back(ratio);
  const double fast_speedup = fast.probes_per_sec / scalar.probes_per_sec;
  bench::BenchRecord fast_ratio;
  fast_ratio.name = "greedy_campaign_fast_speedup_x";
  fast_ratio.iters = 1;
  fast_ratio.probes_per_sec = fast_speedup;
  records.push_back(fast_ratio);
  std::cout << "greedy campaign probes/sec: scalar " << scalar.probes_per_sec
            << ", batched " << batched.probes_per_sec << ", lockstep "
            << lockstep.probes_per_sec << ", lockstep+mixed " << mixed.probes_per_sec
            << ", lockstep+fast " << fast.probes_per_sec << " -> " << speedup
            << "x exact, " << fast_speedup << "x fast (target >= 10x)\n";
}

void BM_PredictScalar(benchmark::State& state) {
  const auto& f = fixture();
  const nn::Matrix& base = f.windows.front().features;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model->predict(base));
  }
}
BENCHMARK(BM_PredictScalar);

void BM_PredictBatchProbes(benchmark::State& state) {
  const auto& f = fixture();
  const auto probes = probe_batch(f.windows.front().features, 11,
                                  static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model->predict_batch(probes));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PredictBatchProbes)->Arg(6)->Arg(32);

void BM_AttackWindowBatched(benchmark::State& state) {
  const auto& f = fixture();
  attack::AttackConfig config;
  config.batched_probes = state.range(0) != 0;
  const attack::EvasionAttack attack(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attack.attack_window(*f.model, f.windows[3]));
  }
}
BENCHMARK(BM_AttackWindowBatched)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "goodones batched-inference bench (trained BGMS surrogate, "
            << fixture().windows.size() << " test windows)\n";
  std::vector<bench::BenchRecord> records;
  run_probe_modes(records);
  run_campaign_modes(records);
  bench::save_bench_json(records, "batched_inference");
  return goodones::bench::run_microbenchmarks(argc, argv);
}
