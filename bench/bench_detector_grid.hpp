// Shared implementation for the Fig. 7 (recall) / Fig. 8 (precision) /
// Fig. 11 (F1) benches: all three render columns of the same detector x
// strategy grid, which is computed once and shared via the artifact cache.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace goodones::bench {

struct MetricSpec {
  std::string figure;       ///< e.g. "Fig. 7"
  std::string metric_name;  ///< e.g. "Recall"
  std::string artifact;     ///< CSV file name
  std::function<double(const core::ConfusionMatrix&)> value;
};

/// Runs (or loads) the full experiment grid and renders one metric of it.
inline void render_metric_grid(core::RiskProfilingFramework& framework,
                               const MetricSpec& spec) {
  const std::vector<detect::DetectorKind> kinds = {detect::DetectorKind::kKnn,
                                                   detect::DetectorKind::kOcsvm,
                                                   detect::DetectorKind::kMadGan};
  const core::ExperimentResults results = core::experiments_with_cache(framework, kinds);

  common::AsciiTable table(
      spec.figure + " — " + spec.metric_name + " by detector and training strategy",
      {"Detector", "Less Vulnerable", "More Vulnerable", "Random Samples", "All Patients"});
  common::CsvTable csv({"detector", "strategy", spec.metric_name, "tp", "fp", "fn", "tn",
                        "train_benign", "train_malicious"});

  for (const auto kind : kinds) {
    std::vector<std::string> row{detect::to_string(kind)};
    for (const core::Strategy strategy : core::all_strategies()) {
      const auto& entry = results.entry(kind, strategy);
      row.push_back(common::fixed(spec.value(entry.pooled), 3));
      csv.add_row({detect::to_string(kind), core::to_string(strategy),
                   common::format_double(spec.value(entry.pooled)),
                   std::to_string(entry.pooled.tp), std::to_string(entry.pooled.fp),
                   std::to_string(entry.pooled.fn), std::to_string(entry.pooled.tn),
                   std::to_string(entry.train_benign),
                   std::to_string(entry.train_malicious)});
    }
    table.add_row(std::move(row));
  }
  table.print();
  save_artifact(csv, spec.artifact);

  // Headline deltas the paper quotes: selective (Less Vulnerable) vs
  // indiscriminate (All Patients) training.
  std::cout << spec.metric_name << " change, Less Vulnerable vs All Patients:\n";
  for (const auto kind : kinds) {
    const double selective =
        spec.value(results.entry(kind, core::Strategy::kLessVulnerable).pooled);
    const double indiscriminate =
        spec.value(results.entry(kind, core::Strategy::kAllVictims).pooled);
    const double delta =
        indiscriminate > 0.0 ? (selective - indiscriminate) / indiscriminate : 0.0;
    std::cout << "  " << detect::to_string(kind) << ": " << common::fixed(selective, 3)
              << " vs " << common::fixed(indiscriminate, 3) << " ("
              << common::signed_percent(delta, 1) << ")\n";
  }

  // Training-set-size note for the MAD-GAN headline (recall 1.0 at a 75%
  // smaller training set in the paper).
  const auto& less = results.entry(detect::DetectorKind::kMadGan,
                                   core::Strategy::kLessVulnerable);
  const auto& all = results.entry(detect::DetectorKind::kMadGan,
                                  core::Strategy::kAllVictims);
  if (all.train_benign > 0) {
    const double reduction = 1.0 - static_cast<double>(less.train_benign) /
                                       static_cast<double>(all.train_benign);
    std::cout << "MAD-GAN training-set size: " << less.train_benign << " vs "
              << all.train_benign << " windows ("
              << common::fixed(100.0 * reduction, 0) << "% reduction; paper: 75%)\n";
  }
}

}  // namespace goodones::bench
