// Reproduces paper Table II: the patient vulnerability clusters produced by
// cutting the Fig. 3 dendrograms, cross-checked against attack success.
// Paper result: less vulnerable = {A_5, B_1, B_2}, more vulnerable = rest.
#include "bench_common.hpp"

#include <algorithm>
#include <sstream>

#include "cluster/distance.hpp"

namespace {

using namespace goodones;

void reproduce_table2(core::RiskProfilingFramework& framework) {
  const auto& profiling = framework.profiling();
  const auto& entities = framework.entities();

  const auto join = [&](const std::vector<std::size_t>& victims, std::size_t subset) {
    std::ostringstream out;
    bool first = true;
    for (const auto p : victims) {
      if (entities[p].subset != subset) continue;
      if (!first) out << " ";
      out << entities[p].name;
      first = false;
    }
    return out.str();
  };

  common::AsciiTable table("Table II — Clusters of patient vulnerability to the attack",
                           {"Cluster", "Subset A", "Subset B"});
  table.add_row({"Less Vulnerable", join(profiling.clusters.less_vulnerable, 0),
                 join(profiling.clusters.less_vulnerable, 1)});
  table.add_row({"More Vulnerable", join(profiling.clusters.more_vulnerable, 0),
                 join(profiling.clusters.more_vulnerable, 1)});
  table.print();

  // Cross-check the paper uses: per-patient attack success (profiling
  // campaign) alongside the assigned cluster.
  common::AsciiTable check("Cluster cross-check — attack success per patient",
                           {"Patient", "Attack success %", "Cluster"});
  common::CsvTable csv({"patient", "attack_success_pct", "cluster"});
  for (std::size_t i = 0; i < entities.size(); ++i) {
    const bool less =
        std::find(profiling.clusters.less_vulnerable.begin(),
                  profiling.clusters.less_vulnerable.end(),
                  i) != profiling.clusters.less_vulnerable.end();
    const double rate = 100.0 * profiling.train_attack_rates[i].overall_rate();
    check.add_row({entities[i].name, common::fixed(rate, 1),
                   less ? "Less Vulnerable" : "More Vulnerable"});
    csv.add_row({entities[i].name, common::format_double(rate),
                 less ? "less" : "more"});
  }
  check.print();
  bench::save_artifact(csv, "table2_clusters.csv");

  std::cout << "Paper Table II reference: Less Vulnerable = {A_5, B_1, B_2}; "
               "More Vulnerable = rest.\n";
}

void BM_FullProfilingPipeline(benchmark::State& state) {
  // Times steps 2-4 (risk profiles -> clustering) on precomputed campaign
  // outcomes; attack simulation and model training are excluded.
  const core::FrameworkConfig config =
      bench::bgms_domain()->prepare(core::FrameworkConfig::from_env());
  core::RiskProfilingFramework framework(bench::bgms_domain(), config);
  const auto& profiling = framework.profiling();
  std::vector<std::vector<double>> series;
  for (const auto& p : profiling.profiles) series.push_back(p.log_scaled());
  const std::size_t min_len = [&] {
    std::size_t len = series.front().size();
    for (const auto& s : series) len = std::min(len, s.size());
    return len;
  }();
  for (auto& s : series) s.resize(min_len);

  for (auto _ : state) {
    const auto distances =
        cluster::distance_matrix(series, cluster::ProfileDistance::kEuclidean);
    auto dendrogram = cluster::agglomerate(distances, cluster::Linkage::kAverage);
    benchmark::DoNotOptimize(dendrogram.cut(2));
  }
}
BENCHMARK(BM_FullProfilingPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  auto config = goodones::bench::announce_config();
  goodones::core::RiskProfilingFramework framework(goodones::bench::bgms_domain(), config);
  reproduce_table2(framework);
  return goodones::bench::run_microbenchmarks(argc, argv);
}
