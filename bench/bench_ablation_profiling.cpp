// Ablation bench: the design choices DESIGN.md calls out, plus the paper's
// own planned sensitivity analysis (§V: "conduct a sensitivity analysis on
// coefficient choice").
//
//   1. Severity-schedule sensitivity — does Table II survive when the
//      exponential Table-I coefficients are replaced with exponential
//      base 4, linear, or uniform schedules?
//   2. Clustering-choice sensitivity — linkage (single/complete/average/
//      Ward) x distance (Euclidean/DTW).
//
// Each variant reports whether it reproduces the baseline clusters
// ({A_5, B_1, B_2} less vulnerable in the shipped configuration).
#include "bench_common.hpp"

#include <algorithm>

#include "cluster/distance.hpp"
#include "risk/online.hpp"
#include "risk/schedule.hpp"

namespace {

using namespace goodones;

/// Clusters the cohort's risk profiles (re-derived from the profiling
/// campaign under `schedule`) with the given linkage/distance; returns the
/// sorted less-vulnerable patient indices.
std::vector<std::size_t> cluster_variant(core::RiskProfilingFramework& framework,
                                         const risk::SeveritySchedule& schedule,
                                         cluster::Linkage linkage,
                                         cluster::ProfileDistance distance) {
  const auto& entities = framework.entities();
  std::vector<risk::RiskProfile> profiles;
  profiles.reserve(entities.size());
  for (std::size_t i = 0; i < entities.size(); ++i) {
    profiles.push_back(risk::build_profile(entities[i].name,
                                           framework.profiling_outcomes(i), schedule));
  }

  std::vector<std::size_t> less;
  for (const std::size_t offset : {std::size_t{0}, std::size_t{6}}) {
    std::vector<risk::RiskProfile> subset(profiles.begin() + static_cast<std::ptrdiff_t>(offset),
                                          profiles.begin() + static_cast<std::ptrdiff_t>(offset) + 6);
    subset = risk::align_profiles(std::move(subset));
    std::vector<std::vector<double>> series;
    for (const auto& p : subset) series.push_back(p.log_scaled());
    const auto distances = cluster::distance_matrix(series, distance);
    const auto dendrogram = cluster::agglomerate(distances, linkage);
    const auto labels = dendrogram.cut(2);

    // Label by attack success, as the framework does.
    double rate[2] = {0.0, 0.0};
    std::size_t count[2] = {0, 0};
    const auto& profiling = framework.profiling();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      rate[labels[i]] += profiling.train_attack_rates[offset + i].overall_rate();
      ++count[labels[i]];
    }
    for (int g = 0; g < 2; ++g) {
      if (count[g] > 0) rate[g] /= static_cast<double>(count[g]);
    }
    const std::size_t less_label = rate[0] <= rate[1] ? 0 : 1;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (labels[i] == less_label) less.push_back(offset + i);
    }
  }
  std::sort(less.begin(), less.end());
  return less;
}

std::string victim_list(core::RiskProfilingFramework& framework,
                        const std::vector<std::size_t>& victims) {
  std::string out;
  for (const auto p : victims) {
    if (!out.empty()) out += " ";
    out += framework.entities()[p].name;
  }
  return out;
}

void run_ablations(core::RiskProfilingFramework& framework) {
  const auto baseline = cluster_variant(framework, risk::SeveritySchedule::paper_default(),
                                        framework.config().linkage,
                                        framework.config().profile_distance);

  // --- 1. Severity-schedule sensitivity (paper §V future work) ---
  common::AsciiTable severity_table("Ablation — severity-schedule sensitivity (paper §V)",
                                    {"Schedule", "Less-vulnerable cluster", "Matches baseline"});
  common::CsvTable csv({"kind", "variant", "less_vulnerable", "matches_baseline"});
  const std::vector<risk::SeveritySchedule> schedules = {
      risk::SeveritySchedule::paper_default(), risk::SeveritySchedule::exponential(4.0),
      risk::SeveritySchedule::linear(), risk::SeveritySchedule::uniform()};
  for (const auto& schedule : schedules) {
    const auto less = cluster_variant(framework, schedule, framework.config().linkage,
                                      framework.config().profile_distance);
    const bool matches = less == baseline;
    severity_table.add_row({schedule.name(), victim_list(framework, less),
                            matches ? "yes" : "NO"});
    csv.add_row({"severity", schedule.name(), victim_list(framework, less),
                 matches ? "1" : "0"});
  }
  severity_table.print();

  // --- 2. Clustering choices ---
  common::AsciiTable cluster_table("Ablation — clustering linkage x distance",
                                   {"Linkage", "Distance", "Less-vulnerable cluster",
                                    "Matches baseline"});
  const struct {
    cluster::Linkage linkage;
    const char* name;
  } linkages[] = {{cluster::Linkage::kSingle, "single"},
                  {cluster::Linkage::kComplete, "complete"},
                  {cluster::Linkage::kAverage, "average"},
                  {cluster::Linkage::kWard, "ward"}};
  const struct {
    cluster::ProfileDistance distance;
    const char* name;
  } distances[] = {{cluster::ProfileDistance::kEuclidean, "euclidean"},
                   {cluster::ProfileDistance::kDtw, "dtw"}};
  for (const auto& [linkage, linkage_name] : linkages) {
    for (const auto& [distance, distance_name] : distances) {
      const auto less = cluster_variant(framework, risk::SeveritySchedule::paper_default(),
                                        linkage, distance);
      const bool matches = less == baseline;
      cluster_table.add_row({linkage_name, distance_name, victim_list(framework, less),
                             matches ? "yes" : "NO"});
      csv.add_row({"clustering", std::string(linkage_name) + "+" + distance_name,
                   victim_list(framework, less), matches ? "1" : "0"});
    }
  }
  cluster_table.print();
  bench::save_artifact(csv, "ablation_profiling.csv");

  // --- 3. Online profiler (paper Appendix D) fed by the same campaigns ---
  std::vector<std::string> victims;
  for (const auto& entity : framework.entities()) victims.push_back(entity.name);
  risk::OnlineRiskProfiler online(victims, {});
  // Stream each patient's profiling campaign in four chronological batches.
  for (std::size_t p = 0; p < victims.size(); ++p) {
    const auto& outcomes = framework.profiling_outcomes(p);
    const std::size_t batch = std::max<std::size_t>(1, outcomes.size() / 4);
    for (std::size_t start = 0; start < outcomes.size(); start += batch) {
      const std::size_t end = std::min(outcomes.size(), start + batch);
      online.observe(p, {outcomes.begin() + static_cast<std::ptrdiff_t>(start),
                         outcomes.begin() + static_cast<std::ptrdiff_t>(end)});
    }
  }
  auto partition = online.reassess();
  std::sort(partition.less_vulnerable.begin(), partition.less_vulnerable.end());
  std::cout << "\nOnline profiler (Appendix-D adaptive reassessment), streaming the same "
               "campaigns:\n  less vulnerable: "
            << victim_list(framework, partition.less_vulnerable)
            << (partition.less_vulnerable == baseline ? "  (matches offline baseline)"
                                                      : "  (differs from offline baseline)")
            << "\n";
}

void BM_OnlineObserve(benchmark::State& state) {
  risk::OnlineRiskProfiler profiler({"A_0"}, {});
  std::vector<attack::WindowOutcome> batch(64);
  for (auto& outcome : batch) {
    outcome.attack.benign_prediction = 100.0;
    outcome.attack.adversarial_prediction = 380.0;
    outcome.benign_predicted_state = data::StateLabel::kNormal;
    outcome.adversarial_predicted_state = data::StateLabel::kHigh;
  }
  for (auto _ : state) {
    profiler.observe(0, batch);
    benchmark::DoNotOptimize(profiler.level(0));
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
}
BENCHMARK(BM_OnlineObserve);

}  // namespace

int main(int argc, char** argv) {
  auto config = goodones::bench::announce_config();
  goodones::core::RiskProfilingFramework framework(goodones::bench::bgms_domain(), config);
  run_ablations(framework);
  return goodones::bench::run_microbenchmarks(argc, argv);
}
