// Reproduces paper Fig. 11 (Appendix C): F1-score of kNN, OneClassSVM and
// MAD-GAN under the four training strategies. Paper headline: F1 rises by
// 7.3% (kNN) and 10.9% (OneClassSVM) under less-vulnerable training despite
// the recall-precision trade-off.
#include "bench_detector_grid.hpp"

namespace {

using namespace goodones;

void BM_ConfusionMetrics(benchmark::State& state) {
  core::ConfusionMatrix cm;
  cm.tp = 812;
  cm.fp = 43;
  cm.fn = 120;
  cm.tn = 5021;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cm.recall());
    benchmark::DoNotOptimize(cm.precision());
    benchmark::DoNotOptimize(cm.f1());
  }
}
BENCHMARK(BM_ConfusionMetrics);

}  // namespace

int main(int argc, char** argv) {
  auto config = goodones::bench::announce_config();
  goodones::core::RiskProfilingFramework framework(goodones::bench::bgms_domain(), config);
  goodones::bench::render_metric_grid(
      framework, {"Fig. 11", "F1-score", "fig11_f1.csv",
                  [](const goodones::core::ConfusionMatrix& cm) { return cm.f1(); }});
  return goodones::bench::run_microbenchmarks(argc, argv);
}
