// Shared bench scaffolding.
//
// Every bench binary follows the same contract:
//   1. reproduce its paper table/figure (print an ASCII table, persist the
//      same rows as CSV under the artifacts directory), then
//   2. run google-benchmark timings for the kernels that produced it.
// Bench binaries run with no arguments; GOODONES_FULL=1 switches the
// experiment scale from the calibrated fast preset to the paper's settings.
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/cache.hpp"
#include "core/config.hpp"
#include "core/framework.hpp"

namespace goodones::bench {

/// Writes a reproduction CSV next to the console output.
inline void save_artifact(const common::CsvTable& table, const std::string& name) {
  const auto path = core::artifacts_dir() / name;
  table.write(path);
  std::cout << "[artifact] " << path.string() << "\n";
}

/// Announces which preset the run uses.
inline core::FrameworkConfig announce_config() {
  core::FrameworkConfig config = core::FrameworkConfig::from_env();
  const bool full = config.cohort.train_steps == core::FrameworkConfig::full().cohort.train_steps;
  std::cout << "goodones reproduction bench — preset: " << (full ? "FULL (paper scale)" : "fast")
            << " (set GOODONES_FULL=1 for paper-scale settings)\n";
  return config;
}

/// Runs the registered google-benchmark microbenchmarks.
inline int run_microbenchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace goodones::bench
