// Shared bench scaffolding.
//
// Every bench binary follows the same contract:
//   1. reproduce its paper table/figure (print an ASCII table, persist the
//      same rows as CSV under the artifacts directory), then
//   2. run google-benchmark timings for the kernels that produced it.
// Bench binaries run with no arguments; GOODONES_FULL=1 switches the
// experiment scale from the calibrated fast preset to the paper's settings.
//
// The reproduction benches target the paper's BGMS case study, so they all
// run on the BGMS DomainAdapter; the engine underneath is domain-agnostic.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/cache.hpp"
#include "core/config.hpp"
#include "core/framework.hpp"
#include "domains/bgms/adapter.hpp"
#include "nn/simd.hpp"

// Baked in by CMake for bench targets: the repo root (BENCH_*.json is a
// committed perf trail, so it lands next to the sources, not in the
// artifacts dir) and the configure-time commit sha.
#ifndef GOODONES_BENCH_OUTPUT_DIR
#define GOODONES_BENCH_OUTPUT_DIR ""
#endif
#ifndef GOODONES_GIT_SHA
#define GOODONES_GIT_SHA "unknown"
#endif

namespace goodones::bench {

/// True when GOODONES_BENCH_SMOKE is set: hand-timed records shrink to one
/// rep and the google-benchmark sweep is skipped. CI uses this to check the
/// bench binaries run end to end and write their JSON without paying for
/// real timings.
inline bool smoke_run() { return std::getenv("GOODONES_BENCH_SMOKE") != nullptr; }

/// Rep count for hand-timed records, honoring smoke mode.
inline std::size_t bench_reps(std::size_t full) { return smoke_run() ? 1 : full; }

/// Writes a reproduction CSV next to the console output.
inline void save_artifact(const common::CsvTable& table, const std::string& name) {
  const auto path = core::artifacts_dir() / name;
  table.write(path);
  std::cout << "[artifact] " << path.string() << "\n";
}

/// One timing result destined for the machine-readable perf trail.
struct BenchRecord {
  std::string name;
  std::size_t iters = 0;
  double ns_per_op = 0.0;
  double probes_per_sec = 0.0;  ///< 0 when the bench has no probe notion
};

/// Human-readable name of a scoring precision for the bench JSON header.
inline const char* precision_name(nn::Precision precision) {
  switch (precision) {
    case nn::Precision::kDouble: return "double";
    case nn::Precision::kMixed: return "mixed";
    case nn::Precision::kFast: return "fast";
  }
  return "unknown";
}

/// Persists timing records as BENCH_<name>.json at the repo root (falling
/// back to the artifacts dir when built without the output-dir definition)
/// so the perf trajectory stays machine-readable across PRs:
///   {"git_sha", "isa", "precision", "benchmarks": [{"name", "iters",
///    "ns_per_op", "probes_per_sec"}, ...]}
/// git_sha is the configure-time commit; isa is the SIMD lane the numbers
/// were measured under (scalar / avx2 / neon, after the GOODONES_SIMD env
/// override); precision is the DEFAULT scoring lane of the run ("double"
/// unless the bench says otherwise — individual records may still cover
/// other lanes, e.g. the *_mixed / *_fast campaign modes, which their names
/// make explicit). Two runs are only comparable when all header fields
/// match.
inline void save_bench_json(const std::vector<BenchRecord>& records, const std::string& name,
                            nn::Precision precision = nn::Precision::kDouble) {
  const std::string output_dir = GOODONES_BENCH_OUTPUT_DIR;
  const auto path = (output_dir.empty() ? core::artifacts_dir()
                                        : std::filesystem::path(output_dir)) /
                    ("BENCH_" + name + ".json");
  std::ofstream out(path);
  // Full double precision (cross-PR comparisons are the point of the file);
  // JSON has no NaN/inf, so non-finite values are written as 0.
  out.precision(17);
  const auto finite = [](double v) { return std::isfinite(v) ? v : 0.0; };
  out << "{\n  \"git_sha\": \"" << GOODONES_GIT_SHA << "\",\n  \"isa\": \""
      << nn::simd::isa_name(nn::simd::active_isa()) << "\",\n  \"precision\": \""
      << precision_name(precision) << "\",\n  \"benchmarks\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out << (i == 0 ? "" : ",") << "\n    {\"name\": \"" << r.name
        << "\", \"iters\": " << r.iters << ", \"ns_per_op\": " << finite(r.ns_per_op)
        << ", \"probes_per_sec\": " << finite(r.probes_per_sec) << "}";
  }
  out << "\n  ]\n}\n";
  std::cout << "[artifact] " << path.string() << "\n";
}

/// The shared BGMS adapter all reproduction benches run on.
inline std::shared_ptr<const core::DomainAdapter> bgms_domain() {
  static const auto domain = std::make_shared<bgms::BgmsDomain>();
  return domain;
}

/// Announces which preset the run uses; returns the BGMS-prepared config.
inline core::FrameworkConfig announce_config() {
  core::FrameworkConfig config = bgms_domain()->prepare(core::FrameworkConfig::from_env());
  const bool full =
      config.population.train_steps == core::FrameworkConfig::full().population.train_steps;
  std::cout << "goodones reproduction bench — preset: " << (full ? "FULL (paper scale)" : "fast")
            << " (set GOODONES_FULL=1 for paper-scale settings)\n";
  return config;
}

/// Runs the registered google-benchmark microbenchmarks (skipped in smoke
/// mode — the hand-timed records already exercised the measured paths).
inline int run_microbenchmarks(int argc, char** argv) {
  if (smoke_run()) {
    std::cout << "[smoke] skipping google-benchmark sweep\n";
    return 0;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace goodones::bench
