// Shared bench scaffolding.
//
// Every bench binary follows the same contract:
//   1. reproduce its paper table/figure (print an ASCII table, persist the
//      same rows as CSV under the artifacts directory), then
//   2. run google-benchmark timings for the kernels that produced it.
// Bench binaries run with no arguments; GOODONES_FULL=1 switches the
// experiment scale from the calibrated fast preset to the paper's settings.
//
// The reproduction benches target the paper's BGMS case study, so they all
// run on the BGMS DomainAdapter; the engine underneath is domain-agnostic.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "common/table.hpp"
#include "core/cache.hpp"
#include "core/config.hpp"
#include "core/framework.hpp"
#include "domains/bgms/adapter.hpp"

namespace goodones::bench {

/// Writes a reproduction CSV next to the console output.
inline void save_artifact(const common::CsvTable& table, const std::string& name) {
  const auto path = core::artifacts_dir() / name;
  table.write(path);
  std::cout << "[artifact] " << path.string() << "\n";
}

/// One timing result destined for the machine-readable perf trail.
struct BenchRecord {
  std::string name;
  std::size_t iters = 0;
  double ns_per_op = 0.0;
  double probes_per_sec = 0.0;  ///< 0 when the bench has no probe notion
};

/// Persists timing records as BENCH_<name>.json under the artifacts dir so
/// the perf trajectory stays machine-readable across PRs:
///   {"benchmarks": [{"name", "iters", "ns_per_op", "probes_per_sec"}, ...]}
inline void save_bench_json(const std::vector<BenchRecord>& records, const std::string& name) {
  const auto path = core::artifacts_dir() / ("BENCH_" + name + ".json");
  std::ofstream out(path);
  // Full double precision (cross-PR comparisons are the point of the file);
  // JSON has no NaN/inf, so non-finite values are written as 0.
  out.precision(17);
  const auto finite = [](double v) { return std::isfinite(v) ? v : 0.0; };
  out << "{\n  \"benchmarks\": [";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& r = records[i];
    out << (i == 0 ? "" : ",") << "\n    {\"name\": \"" << r.name
        << "\", \"iters\": " << r.iters << ", \"ns_per_op\": " << finite(r.ns_per_op)
        << ", \"probes_per_sec\": " << finite(r.probes_per_sec) << "}";
  }
  out << "\n  ]\n}\n";
  std::cout << "[artifact] " << path.string() << "\n";
}

/// The shared BGMS adapter all reproduction benches run on.
inline std::shared_ptr<const core::DomainAdapter> bgms_domain() {
  static const auto domain = std::make_shared<bgms::BgmsDomain>();
  return domain;
}

/// Announces which preset the run uses; returns the BGMS-prepared config.
inline core::FrameworkConfig announce_config() {
  core::FrameworkConfig config = bgms_domain()->prepare(core::FrameworkConfig::from_env());
  const bool full =
      config.population.train_steps == core::FrameworkConfig::full().population.train_steps;
  std::cout << "goodones reproduction bench — preset: " << (full ? "FULL (paper scale)" : "fast")
            << " (set GOODONES_FULL=1 for paper-scale settings)\n";
  return config;
}

/// Runs the registered google-benchmark microbenchmarks.
inline int run_microbenchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace goodones::bench
