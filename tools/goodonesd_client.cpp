// goodonesd_client — CLI client for the serving wire protocol (daemon or
// router: both ends of the mesh speak the same frames).
//
//   goodonesd_client ENDPOINT score ENTITY WINDOWS.CSV [--regime 0|1]
//   goodonesd_client ENDPOINT ingest ENTITY TICKS.CSV [--regime 0|1]
//   goodonesd_client ENDPOINT score-latest ENTITY [COUNT] [--seq-len N]
//   goodonesd_client ENDPOINT stats [PREFIX]
//   goodonesd_client ENDPOINT health
//   goodonesd_client ENDPOINT refresh
//   goodonesd_client ENDPOINT promote [GENERATION]
//   goodonesd_client ENDPOINT rollback [GENERATION]
//   goodonesd_client ENDPOINT canary-status
//   goodonesd_client ENDPOINT drain SHARD      (router only)
//   goodonesd_client ENDPOINT shutdown
//
// promote/rollback resolve a staged canary candidate (canary-mode daemons
// stage Refresh rebuilds instead of hot-swapping them). Bare form addresses
// whatever is staged; an explicit GENERATION is exactly-once across
// retries. canary-status is `stats serve.canary` spelled as a verb — the
// mirrored-evidence gauges the promotion policy is judging.
//
// ENDPOINT is unix:/path/to.sock, tcp:host:port, or a bare path (unix
// shorthand — the pre-mesh invocation keeps working).
//
// WINDOWS.CSV carries one or more telemetry windows: a "window" column
// groups rows (timesteps) into windows, every other column is one raw
// telemetry channel in the bundle's channel order:
//
//   window,reading,context0
//   0,112.5,0
//   0,114.1,0
//   1,180.2,35
//   ...
//
// TICKS.CSV streams raw history into the daemon's column store: every
// column is one telemetry channel in the bundle's channel order, every row
// one tick (a "window" column, if present, is ignored — the same CSV a
// score command consumes replays as a contiguous tick stream). After
// ingesting, `score-latest ENTITY [COUNT]` scores the COUNT most recent
// stored windows server-side — no window bytes cross the wire at all.
//
// Scores print one line per window — forecast, residual, anomaly score,
// verdict, risk — plus the bundle generation that produced the verdicts
// (the daemon's provenance tag; watch it change across a hot swap). Used
// by tests/serve_daemon_test.cpp and the README daemon quickstart.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/csv.hpp"
#include "common/socket.hpp"
#include "serve/daemon.hpp"

using namespace goodones;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0 << " ENDPOINT score ENTITY WINDOWS.CSV [--regime 0|1]\n"
            << "       " << argv0 << " ENDPOINT ingest ENTITY TICKS.CSV [--regime 0|1]\n"
            << "       " << argv0 << " ENDPOINT score-latest ENTITY [COUNT] [--seq-len N]\n"
            << "       " << argv0 << " ENDPOINT stats [PREFIX]\n"
            << "       " << argv0 << " ENDPOINT health\n"
            << "       " << argv0 << " ENDPOINT refresh\n"
            << "       " << argv0 << " ENDPOINT promote [GENERATION]\n"
            << "       " << argv0 << " ENDPOINT rollback [GENERATION]\n"
            << "       " << argv0 << " ENDPOINT canary-status\n"
            << "       " << argv0 << " ENDPOINT drain SHARD\n"
            << "       " << argv0 << " ENDPOINT shutdown\n"
            << "ENDPOINT: unix:/path, tcp:host:port, or a bare unix path\n";
  return 2;
}

/// Parses the windows CSV: rows grouped by the "window" column (in file
/// order), remaining columns = channels in order.
std::vector<serve::TelemetryWindow> load_windows(const std::string& path,
                                                 data::Regime regime) {
  const common::CsvTable table = common::CsvTable::read(path);
  const std::size_t window_col = table.column_index("window");
  const std::size_t channels = table.num_cols() - 1;
  if (channels == 0) throw std::runtime_error("windows csv needs channel columns");

  // Group rows by window id, preserving first-appearance order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<std::vector<double>>> grouped;
  for (const auto& row : table.rows()) {
    const std::string& id = row[window_col];
    if (grouped.find(id) == grouped.end()) order.push_back(id);
    std::vector<double> values;
    values.reserve(channels);
    for (std::size_t c = 0; c < table.num_cols(); ++c) {
      if (c == window_col) continue;
      values.push_back(std::stod(row[c]));
    }
    grouped[id].push_back(std::move(values));
  }

  std::vector<serve::TelemetryWindow> windows;
  windows.reserve(order.size());
  for (const std::string& id : order) {
    const auto& rows = grouped[id];
    serve::TelemetryWindow window;
    window.regime = regime;
    window.features = nn::Matrix(rows.size(), channels);
    for (std::size_t t = 0; t < rows.size(); ++t) {
      for (std::size_t c = 0; c < channels; ++c) window.features(t, c) = rows[t][c];
    }
    windows.push_back(std::move(window));
  }
  return windows;
}

/// Parses a ticks CSV: every column one channel in bundle order, every row
/// one tick; a "window" column (the score-CSV grouping key) is ignored so
/// the same file serves both verbs.
std::pair<nn::Matrix, std::vector<data::Regime>> load_ticks(const std::string& path,
                                                            data::Regime regime) {
  const common::CsvTable table = common::CsvTable::read(path);
  std::size_t window_col = table.num_cols();  // sentinel: no window column
  for (std::size_t c = 0; c < table.num_cols(); ++c) {
    if (table.header()[c] == "window") window_col = c;
  }
  const std::size_t channels = table.num_cols() - (window_col < table.num_cols() ? 1 : 0);
  if (channels == 0) throw std::runtime_error("ticks csv needs channel columns");

  nn::Matrix ticks(table.num_rows(), channels);
  for (std::size_t t = 0; t < table.num_rows(); ++t) {
    std::size_t out = 0;
    for (std::size_t c = 0; c < table.num_cols(); ++c) {
      if (c == window_col) continue;
      ticks(t, out++) = std::stod(table.rows()[t][c]);
    }
  }
  return {std::move(ticks), std::vector<data::Regime>(table.num_rows(), regime)};
}

void print_response(const std::string& entity, const serve::ScoreResponse& response) {
  std::cout << "entity " << entity << ": cluster " << serve::to_string(response.cluster)
            << ", generation " << response.generation << "\n";
  for (std::size_t w = 0; w < response.windows.size(); ++w) {
    const serve::WindowScore& score = response.windows[w];
    std::cout << "  window " << w << ": forecast " << score.forecast << ", residual "
              << score.residual << ", anomaly " << score.anomaly_score << ", "
              << (score.flagged ? "FLAGGED" : "ok") << ", risk " << score.risk << "\n";
  }
}

int run_score(serve::DaemonClient& client, const std::string& entity,
              const std::string& csv_path, data::Regime regime) {
  serve::ScoreRequest request;
  request.entity = entity;
  request.windows = load_windows(csv_path, regime);
  const serve::ScoreResponse response = client.score(request);
  print_response(entity, response);
  return 0;
}

int run_ingest(serve::DaemonClient& client, const std::string& entity,
               const std::string& csv_path, data::Regime regime) {
  serve::wire::IngestRequest request;
  request.entity = entity;
  std::tie(request.ticks, request.regimes) = load_ticks(csv_path, regime);
  const serve::wire::IngestReply reply = client.ingest(request);
  std::cout << "entity " << entity << ": ingested " << reply.accepted << " ticks ("
            << reply.total_ticks << " stored)\n";
  return 0;
}

int run_score_latest(serve::DaemonClient& client, const std::string& entity,
                     std::size_t count, std::size_t seq_len) {
  serve::wire::ScoreLatestRequest request;
  request.entity = entity;
  request.count = count;
  request.seq_len = seq_len;  // 0 = the daemon's configured window length
  const serve::ScoreResponse response = client.score_latest(request);
  print_response(entity, response);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string endpoint_text = argv[1];
  const std::string command = argv[2];
  try {
    // Endpoint::parse treats a bare path as unix shorthand; fail-fast
    // client config (no silent reconnect loops from a CLI).
    serve::DaemonClientConfig client_config;
    client_config.channel.reconnect = false;
    client_config.channel.backoff.max_attempts = 1;
    serve::DaemonClient client(common::Endpoint::parse(endpoint_text), client_config);
    if (command == "score") {
      if (argc < 5) return usage(argv[0]);
      data::Regime regime = data::Regime::kBaseline;
      if (argc >= 7 && std::string(argv[5]) == "--regime") {
        regime = std::string(argv[6]) == "1" ? data::Regime::kActive
                                             : data::Regime::kBaseline;
      }
      return run_score(client, argv[3], argv[4], regime);
    }
    if (command == "ingest") {
      if (argc < 5) return usage(argv[0]);
      data::Regime regime = data::Regime::kBaseline;
      if (argc >= 7 && std::string(argv[5]) == "--regime") {
        regime = std::string(argv[6]) == "1" ? data::Regime::kActive
                                             : data::Regime::kBaseline;
      }
      return run_ingest(client, argv[3], argv[4], regime);
    }
    if (command == "score-latest") {
      if (argc < 4) return usage(argv[0]);
      std::size_t count = 1;
      std::size_t seq_len = 0;
      int i = 4;
      if (i < argc && std::string(argv[i]).rfind("--", 0) != 0) {
        count = static_cast<std::size_t>(std::stoul(argv[i++]));
      }
      if (i + 1 < argc && std::string(argv[i]) == "--seq-len") {
        seq_len = static_cast<std::size_t>(std::stoul(argv[i + 1]));
      }
      return run_score_latest(client, argv[3], count, seq_len);
    }
    if (command == "stats") {
      const std::string prefix = argc >= 4 ? argv[3] : "";
      for (const auto& [name, value] : client.stats()) {
        if (name.rfind(prefix, 0) == 0) std::cout << name << " " << value << "\n";
      }
      return 0;
    }
    if (command == "health") {
      const serve::wire::HealthReply reply = client.health();
      std::cout << (reply.draining ? "draining" : "serving") << ", generation "
                << reply.generation << "\n";
      return 0;
    }
    if (command == "drain") {
      if (argc < 4) return usage(argv[0]);
      const serve::wire::DrainReply reply = client.drain(argv[3]);
      std::cout << reply.message << "\n";
      return reply.drained ? 0 : 1;
    }
    if (command == "refresh") {
      const serve::wire::RefreshReply reply = client.refresh();
      std::cout << (reply.refreshed ? "refreshed: new generation "
                                    : "no partition move; still serving generation ")
                << reply.generation << "\n";
      return 0;
    }
    if (command == "promote") {
      const std::uint64_t generation = argc >= 4 ? std::stoull(argv[3]) : 0;
      const serve::wire::PromoteReply reply = client.promote(generation);
      std::cout << (reply.applied ? "promoted: primary is now generation "
                                  : "nothing to apply; primary is generation ")
                << reply.generation << "\n";
      return 0;
    }
    if (command == "rollback") {
      const std::uint64_t generation = argc >= 4 ? std::stoull(argv[3]) : 0;
      const serve::wire::RollbackReply reply = client.rollback(generation);
      std::cout << (reply.applied ? "rolled back: candidate dropped, primary stays generation "
                                  : "nothing to apply; primary is generation ")
                << reply.generation << "\n";
      return 0;
    }
    if (command == "canary-status") {
      for (const auto& [name, value] : client.stats()) {
        if (name.rfind("serve.canary", 0) == 0) std::cout << name << " " << value << "\n";
      }
      return 0;
    }
    if (command == "shutdown") {
      client.shutdown();
      std::cout << "daemon acknowledged shutdown\n";
      return 0;
    }
    return usage(argv[0]);
  } catch (const std::exception& error) {
    std::cerr << "goodonesd_client: " << error.what() << "\n";
    return 1;
  }
}
