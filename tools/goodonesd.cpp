// goodonesd — the long-lived serving daemon, runnable.
//
// Trains (first run) or loads (every later run) a miniature synthtel
// serving bundle through the ModelRegistry, then serves it over any
// transport the endpoint seam names until a Shutdown frame arrives. The
// adaptive loop is live: scored traffic feeds the online risk profiler and
// partition moves publish new bundle generations in the background
// (routing-only refreshes — the daemon binary has no training framework to
// retrain detectors with once the bundle is cached; embed serve::Daemon
// with a rebuilder for that).
//
//   goodonesd --listen unix:/tmp/goodones.sock [--entities 3] [--threads 0]
//   goodonesd --listen tcp:127.0.0.1:7401 ...       # a mesh shard
//   goodonesd --socket /tmp/goodones.sock ...       # unix shorthand
//             [--detector knn|ocsvm|madgan] [--reassess 256] [--fast-scoring]
//             [--store-root DIR] [--store-capacity 4096] [--no-store-mmap]
//             [--canary] [--canary-sample-ppm 100000] [--canary-min-windows 256]
//             [--canary-max-flag-delta 0.1] [--no-canary-auto]
//
// --canary turns on measured rollouts: Refresh rebuilds are STAGED as
// candidates and mirrored against sampled traffic; the canary policy (or
// goodonesd_client promote/rollback) decides whether they become primary.
// --no-canary-auto disables the policy's auto-decision — candidates wait
// for an operator verdict while the mirror keeps accumulating evidence.
//
// --fast-scoring serves forecasts through the polynomial fast-math lane
// (nn::Precision::kFast): few-ulp accuracy, highest throughput. Off by
// default — the exact lane is the reference serving mode.
//
// --store-root persists the daemon-owned telemetry store (Ingest /
// ScoreLatest frames) under DIR; without it the store is memory-only and
// history dies with the process.
//
// Pair with goodonesd_client (score / stats / refresh / shutdown).
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <string>

#include "common/socket.hpp"
#include "core/framework.hpp"
#include "domains/synthtel/adapter.hpp"
#include "serve/daemon.hpp"

using namespace goodones;

namespace {

core::FrameworkConfig mini_config(const core::DomainAdapter& domain) {
  core::FrameworkConfig config = domain.prepare(core::FrameworkConfig::fast());
  config.population.train_steps = 2000;
  config.population.test_steps = 600;
  config.registry.forecaster.hidden = 12;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 6;
  config.registry.aggregate_window_step = 40;
  config.profiling_campaign.window_step = 8;
  config.evaluation_campaign.window_step = 8;
  config.detector_benign_stride = 8;
  config.random_runs = 1;
  return config;
}

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --listen ENDPOINT | --socket PATH [--entities N] [--threads N] "
               "[--detector knn|ocsvm|madgan] [--reassess WINDOWS] [--fast-scoring] "
               "[--store-root DIR] [--store-capacity TICKS] [--no-store-mmap] "
               "[--canary] [--canary-sample-ppm PPM] [--canary-min-windows N] "
               "[--canary-max-flag-delta D] [--no-canary-auto]\n"
               "ENDPOINT: unix:/path/to.sock or tcp:host:port (port 0 = ephemeral)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  common::Endpoint listen;
  std::size_t entities = 3;
  std::size_t threads = 0;
  std::size_t reassess = 256;
  bool fast_scoring = false;
  detect::DetectorKind kind = detect::DetectorKind::kKnn;
  std::filesystem::path store_root;
  std::size_t store_capacity = 4096;
  bool store_mmap = true;
  bool canary = false;
  serve::CanaryPolicy canary_policy;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      listen = common::Endpoint::unix_socket(next());
    } else if (arg == "--listen") {
      listen = common::Endpoint::parse(next());
    } else if (arg == "--entities") {
      entities = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--threads") {
      threads = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--reassess") {
      reassess = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--fast-scoring") {
      fast_scoring = true;
    } else if (arg == "--store-root") {
      store_root = next();
    } else if (arg == "--store-capacity") {
      store_capacity = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--no-store-mmap") {
      store_mmap = false;
    } else if (arg == "--canary") {
      canary = true;
    } else if (arg == "--canary-sample-ppm") {
      canary_policy.sample_per_million = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--canary-min-windows") {
      canary_policy.min_mirrored_windows = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--canary-max-flag-delta") {
      canary_policy.max_flag_rate_delta = std::stod(next());
    } else if (arg == "--no-canary-auto") {
      canary_policy.auto_decide = false;
    } else if (arg == "--detector") {
      const std::string name = next();
      if (name == "knn") kind = detect::DetectorKind::kKnn;
      else if (name == "ocsvm") kind = detect::DetectorKind::kOcsvm;
      else if (name == "madgan") kind = detect::DetectorKind::kMadGan;
      else return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }
  if (listen.empty()) return usage(argv[0]);

  const auto domain = std::make_shared<synthtel::SynthtelDomain>(entities);
  core::RiskProfilingFramework framework(domain, mini_config(*domain));
  const serve::ModelRegistry registry;
  serve::RegistryKey key = serve::registry_key(framework, kind);

  // Resume from the newest published generation when one exists (an
  // earlier daemon's refreshes survive restarts); train once otherwise.
  serve::ServingModel model = [&] {
    if (const auto newest = registry.latest(key)) {
      std::cout << "loading cached bundle (generation " << newest->generation << ")\n";
      return registry.load(*newest);
    }
    std::cout << "no cached bundle; training the mini pipeline once...\n";
    return serve::build_serving_model(framework, kind);
  }();

  serve::DaemonConfig config;
  config.listen = listen;
  config.scoring.threads = threads;
  if (fast_scoring) config.scoring.precision = nn::Precision::kFast;
  config.adaptive.reassess_every_windows = reassess;
  config.adaptive.canary = canary;
  config.scoring.canary = canary_policy;
  config.store_root = store_root;
  config.store_segment_capacity = store_capacity;
  config.store_mmap = store_mmap;

  serve::Daemon daemon(std::move(model), std::move(config));
  daemon.start();
  // endpoint() is the RESOLVED endpoint (tcp port 0 becomes the real port).
  const std::string where = daemon.endpoint().to_string();
  std::cout << "goodonesd: serving " << daemon.service().model()->entity_names.size()
            << " entities (detector " << detect::to_string(kind)
            << (fast_scoring ? ", fast scoring" : "") << ", generation "
            << daemon.generation() << ") on " << where << "\n"
            << "score with: goodonesd_client " << where
            << " score <entity> <windows.csv>\n"
            << "stop with:  goodonesd_client " << where << " shutdown\n";
  daemon.wait();
  std::cout << "goodonesd: shut down cleanly (last generation " << daemon.generation()
            << ")\n";
  return 0;
}
