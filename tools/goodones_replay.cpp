// goodones_replay — record a synthtel fleet trace into a columnar telemetry
// store, then mmap-replay it through the scoring stack.
//
//   goodones_replay record --store DIR [--entities 3] [--capacity 4096]
//   goodones_replay replay --store DIR [--entities 3] [--seq-len 12]
//                          [--stride 1] [--generation G] [--no-mmap]
//                          [--fast-scoring] [--detector knn|ocsvm|madgan]
//
// record generates the miniature synthtel fleet (the same deterministic
// population goodonesd serves), streams every entity's held-out telemetry
// into a persisted data::ColumnStore under DIR, and seals it to disk — a
// reusable "day of fleet traffic" artifact.
//
// replay reopens the store (sealed segments mmap straight from disk),
// cuts every window of the trace as a zero-copy WindowView and scores it
// through ScoringService::score_views against the bundle generation of
// your choice (--generation; default = the registry's newest, training
// once on a cold cache like goodonesd does). It reports windows/sec with
// window *assembly*, not the LSTM, on the critical path — the backfill
// shape behind BENCH_ingest.json and the Appendix-D adaptive-loop
// correctness workflow ("re-score a recorded day per generation").
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/framework.hpp"
#include "data/column_store.hpp"
#include "data/window.hpp"
#include "domains/synthtel/adapter.hpp"
#include "serve/model_registry.hpp"
#include "serve/scoring_service.hpp"

using namespace goodones;

namespace {

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " record --store DIR [--entities N] [--capacity TICKS]\n"
      << "       " << argv0
      << " replay --store DIR [--entities N] [--seq-len N] [--stride N] "
         "[--generation G] [--no-mmap] [--fast-scoring] "
         "[--detector knn|ocsvm|madgan]\n";
  return 2;
}

/// The deterministic mini synthtel pipeline both verbs share: record needs
/// its telemetry, replay needs the bundle trained on the same population.
core::FrameworkConfig mini_config(const core::DomainAdapter& domain) {
  core::FrameworkConfig config = domain.prepare(core::FrameworkConfig::fast());
  config.population.train_steps = 2000;
  config.population.test_steps = 600;
  config.registry.forecaster.hidden = 12;
  config.registry.forecaster.epochs = 2;
  config.registry.train_window_step = 6;
  config.registry.aggregate_window_step = 40;
  config.profiling_campaign.window_step = 8;
  config.evaluation_campaign.window_step = 8;
  config.detector_benign_stride = 8;
  config.random_runs = 1;
  return config;
}

int run_record(const std::filesystem::path& store_root, std::size_t entities,
               std::size_t capacity) {
  const auto domain = std::make_shared<synthtel::SynthtelDomain>(entities);
  core::RiskProfilingFramework framework(domain, mini_config(*domain));

  data::ColumnStoreConfig config;
  config.root = store_root;
  config.segment_capacity = capacity;
  data::ColumnStore store(config, framework.domain().spec().num_channels);

  std::uint64_t total_ticks = 0;
  for (const auto& entity : framework.entities()) {
    store.append_block(entity.name, entity.test.values, entity.test.regimes);
    total_ticks += entity.test.steps();
  }
  store.flush();

  const data::ColumnStore::Stats stats = store.stats();
  std::cout << "recorded " << total_ticks << " ticks across " << stats.entities
            << " entities into " << store_root.string() << " (" << stats.segments
            << " segments, capacity " << capacity << ")\n";
  return 0;
}

int run_replay(const std::filesystem::path& store_root, std::size_t entities,
               std::size_t seq_len, std::size_t stride, std::uint64_t generation,
               bool use_mmap, bool fast_scoring, detect::DetectorKind kind) {
  const auto domain = std::make_shared<synthtel::SynthtelDomain>(entities);
  core::RiskProfilingFramework framework(domain, mini_config(*domain));

  // Resolve the bundle: a chosen generation, the newest cached one, or a
  // one-off training run on a cold registry (same policy as goodonesd).
  const serve::ModelRegistry registry;
  serve::RegistryKey key = serve::registry_key(framework, kind);
  serve::ServingModel model = [&] {
    if (generation > 0) {
      key.generation = generation;
      return registry.load(key);
    }
    if (const auto newest = registry.latest(key)) return registry.load(*newest);
    std::cout << "no cached bundle; training the mini pipeline once...\n";
    serve::ServingModel built = serve::build_serving_model(framework, kind);
    // Persist like goodonesd does: later replays reuse it, and the
    // generation a report names stays loadable via --generation.
    key.generation = built.generation;
    if (!registry.contains(key)) registry.save(built);
    return built;
  }();
  const std::uint64_t served_generation = model.generation;

  serve::ScoringServiceConfig scoring;
  if (fast_scoring) scoring.precision = nn::Precision::kFast;
  serve::ScoringService service(std::move(model), scoring);

  data::ColumnStoreConfig config;
  config.root = store_root;
  config.mmap_reads = use_mmap;
  data::ColumnStore store(config, framework.domain().spec().num_channels);

  // Cut every window of the recorded trace as a zero-copy view and score
  // per entity in one score_views batch — the mmap-backed backfill path.
  std::size_t windows = 0;
  std::size_t flagged = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const std::string& entity : store.entity_names()) {
    const std::uint64_t ticks = store.ticks(entity);
    if (ticks < seq_len) continue;
    std::vector<data::WindowView> views;
    for (std::uint64_t end = seq_len - 1; end < ticks; end += stride) {
      views.push_back(store.window_at(entity, end, seq_len));
    }
    const serve::ScoreResponse response =
        service.score_views(entity, std::span<const data::WindowView>(views));
    windows += response.windows.size();
    for (const serve::WindowScore& score : response.windows) {
      if (score.flagged) ++flagged;
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  const data::ColumnStore::Stats stats = store.stats();
  std::cout << "replayed " << windows << " windows (seq_len " << seq_len << ", stride "
            << stride << ") from " << stats.entities << " entities in " << seconds
            << " s: " << (seconds > 0 ? static_cast<double>(windows) / seconds : 0.0)
            << " windows/sec (generation " << served_generation << ", "
            << (use_mmap ? "mmap" : "read-fallback") << ", " << stats.bytes_mapped
            << " bytes resident, " << flagged << " flagged)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string command = argv[1];

  std::filesystem::path store_root;
  std::size_t entities = 3;
  std::size_t capacity = 4096;
  std::size_t seq_len = data::kDefaultSeqLen;
  std::size_t stride = 1;
  std::uint64_t generation = 0;
  bool use_mmap = true;
  bool fast_scoring = false;
  detect::DetectorKind kind = detect::DetectorKind::kKnn;

  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--store") {
      store_root = next();
    } else if (arg == "--entities") {
      entities = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--capacity") {
      capacity = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--seq-len") {
      seq_len = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--stride") {
      stride = static_cast<std::size_t>(std::stoul(next()));
    } else if (arg == "--generation") {
      generation = static_cast<std::uint64_t>(std::stoull(next()));
    } else if (arg == "--no-mmap") {
      use_mmap = false;
    } else if (arg == "--fast-scoring") {
      fast_scoring = true;
    } else if (arg == "--detector") {
      const std::string name = next();
      if (name == "knn") kind = detect::DetectorKind::kKnn;
      else if (name == "ocsvm") kind = detect::DetectorKind::kOcsvm;
      else if (name == "madgan") kind = detect::DetectorKind::kMadGan;
      else return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }
  if (store_root.empty() || stride == 0 || seq_len == 0) return usage(argv[0]);

  try {
    if (command == "record") return run_record(store_root, entities, capacity);
    if (command == "replay") {
      return run_replay(store_root, entities, seq_len, stride, generation, use_mmap,
                        fast_scoring, kind);
    }
    return usage(argv[0]);
  } catch (const std::exception& error) {
    std::cerr << "goodones_replay: " << error.what() << "\n";
    return 1;
  }
}
