// goodones_router — the mesh front end, runnable.
//
// Consistent-hashes entity names across backend goodonesd shards and
// forwards Score frames byte-for-byte to the owning shard (see
// serve/router.hpp and docs/MESH.md). Speaks the same wire protocol as the
// daemon, so goodonesd_client works unchanged against it.
//
//   goodones_router --listen tcp:127.0.0.1:7400
//       --backend shard-a=tcp:127.0.0.1:7401
//       --backend shard-b=tcp:127.0.0.1:7402
//       [--vnodes 128] [--health-interval 500] [--pool 4]
//
// Backends are NAME=ENDPOINT: the name is the shard's ring identity (it
// survives the shard restarting or moving ports), the endpoint is where it
// listens right now. Drain a shard out of the ring with:
//   goodonesd_client tcp:127.0.0.1:7400 drain shard-b
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "serve/router.hpp"

using namespace goodones;

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --listen ENDPOINT --backend NAME=ENDPOINT [--backend ...]\n"
               "          [--vnodes N] [--health-interval MS] [--health-timeout MS] "
               "[--pool N]\n"
               "ENDPOINT: unix:/path/to.sock or tcp:host:port (port 0 = ephemeral)\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  serve::RouterConfig config;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    try {
      if (arg == "--listen") {
        config.listen = common::Endpoint::parse(next());
      } else if (arg == "--backend") {
        const std::string spec = next();
        const std::size_t eq = spec.find('=');
        if (eq == std::string::npos || eq == 0) {
          std::cerr << "--backend wants NAME=ENDPOINT, got '" << spec << "'\n";
          return 2;
        }
        serve::RouterBackendSpec backend;
        backend.name = spec.substr(0, eq);
        backend.endpoint = common::Endpoint::parse(spec.substr(eq + 1));
        config.backends.push_back(std::move(backend));
      } else if (arg == "--vnodes") {
        config.vnodes = static_cast<std::size_t>(std::stoul(next()));
      } else if (arg == "--health-interval") {
        config.health_interval_ms = std::stoi(next());
      } else if (arg == "--health-timeout") {
        config.health_timeout_ms = std::stoi(next());
      } else if (arg == "--pool") {
        config.pool_size = static_cast<std::size_t>(std::stoul(next()));
      } else {
        return usage(argv[0]);
      }
    } catch (const std::exception& error) {
      std::cerr << "goodones_router: " << arg << ": " << error.what() << "\n";
      return 2;
    }
  }
  if (config.listen.empty() || config.backends.empty()) return usage(argv[0]);

  try {
    serve::Router router(std::move(config));
    router.start();
    std::cout << "goodones_router: listening on " << router.endpoint().to_string()
              << ", shards:";
    for (const serve::ShardStatus& shard : router.shards()) {
      std::cout << " " << shard.name << "=" << shard.endpoint.to_string();
    }
    std::cout << "\nstop with: goodonesd_client " << router.endpoint().to_string()
              << " shutdown\n";
    router.wait();
    std::cout << "goodones_router: shut down cleanly\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "goodones_router: " << error.what() << "\n";
    return 1;
  }
}
